package yield

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/ic"
	"repro/internal/units"
)

func TestDieKnownValues(t *testing.T) {
	// Lakefield calibration anchors (§4.2 of the paper): the 82.5 mm²
	// 7 nm logic die yields 89.3 % with D0 = 0.138/cm², α = 10.
	y, err := Die(units.SquareMillimeters(82.5), 0.138, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(y-0.893) > 0.001 {
		t.Errorf("7 nm Lakefield logic yield = %.4f, want 0.893", y)
	}
	// Zero defects: perfect yield.
	y, err = Die(units.SquareMillimeters(500), 0, 10)
	if err != nil {
		t.Fatal(err)
	}
	if y != 1 {
		t.Errorf("zero-defect yield = %v, want 1", y)
	}
}

func TestDieErrors(t *testing.T) {
	if _, err := Die(0, 0.1, 10); err == nil {
		t.Error("zero area should error")
	}
	if _, err := Die(units.SquareMillimeters(10), -1, 10); err == nil {
		t.Error("negative D0 should error")
	}
	if _, err := Die(units.SquareMillimeters(10), 0.1, 0); err == nil {
		t.Error("zero alpha should error")
	}
}

func TestMustDiePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustDie should panic on invalid input")
		}
	}()
	MustDie(0, 0.1, 10)
}

// Property: yield is in (0,1], decreases with area and with defect density.
func TestDieMonotonicity(t *testing.T) {
	cfg := &quick.Config{MaxCount: 400}
	if err := quick.Check(func(a, d float64) bool {
		a = 1 + math.Mod(math.Abs(a), 800)
		d = math.Mod(math.Abs(d), 0.5)
		y1 := MustDie(units.SquareMillimeters(a), d, 10)
		y2 := MustDie(units.SquareMillimeters(a*1.5), d, 10)
		y3 := MustDie(units.SquareMillimeters(a), d+0.05, 10)
		return y1 > 0 && y1 <= 1 && y2 <= y1 && y3 <= y1
	}, cfg); err != nil {
		t.Error(err)
	}
}

// Property: the negative-binomial model approaches the Poisson model
// e^(−A·D0) as alpha grows.
func TestDiePoissonLimit(t *testing.T) {
	area := units.SquareMillimeters(200)
	d0 := 0.15
	poisson := math.Exp(-area.CM2() * d0)
	nb := MustDie(area, d0, 1e6)
	if math.Abs(nb-poisson) > 1e-4 {
		t.Errorf("large-alpha NB = %v, Poisson = %v", nb, poisson)
	}
}

func lakefieldStack(flow ic.BondFlow) Stack3D {
	// Die 1 = 14 nm base/memory die (intrinsic 0.920), die 2 = 7 nm
	// logic die (intrinsic 0.893); hybrid bonding.
	bond := 0.9609
	if flow == ic.W2W {
		bond = 0.9701
	}
	return Stack3D{
		DieYields: []float64{0.920, 0.893},
		BondYield: bond,
		Flow:      flow,
	}
}

// §4.2: "the logic die yield in D2W is 89.3%, the memory die is 88.4%,
// whereas in W2W, both dies have a yield of 79.7%."
func TestTable3LakefieldYields(t *testing.T) {
	d2w := lakefieldStack(ic.D2W)
	logic, err := d2w.DieEffective(2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(logic-0.893) > 0.001 {
		t.Errorf("D2W logic die effective yield = %.4f, want 0.893", logic)
	}
	mem, err := d2w.DieEffective(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mem-0.884) > 0.001 {
		t.Errorf("D2W memory die effective yield = %.4f, want 0.884", mem)
	}

	w2w := lakefieldStack(ic.W2W)
	for i := 1; i <= 2; i++ {
		y, err := w2w.DieEffective(i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(y-0.797) > 0.001 {
			t.Errorf("W2W die %d effective yield = %.4f, want 0.797", i, y)
		}
	}
}

func TestTable3D2WFormulas(t *testing.T) {
	s := Stack3D{DieYields: []float64{0.9, 0.8, 0.7}, BondYield: 0.95, Flow: ic.D2W}
	// Die 1 survives 2 later bonds, die 3 none.
	cases := []struct {
		i    int
		want float64
	}{
		{1, 0.9 * 0.95 * 0.95},
		{2, 0.8 * 0.95},
		{3, 0.7},
	}
	for _, c := range cases {
		got, err := s.DieEffective(c.i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("D2W die %d = %v, want %v", c.i, got, c.want)
		}
	}
	// Bonding op 1 survives the op itself plus the one after: y^2.
	b1, err := s.BondingEffective(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b1-0.95*0.95) > 1e-12 {
		t.Errorf("D2W bonding 1 = %v, want %v", b1, 0.95*0.95)
	}
	b2, _ := s.BondingEffective(2)
	if math.Abs(b2-0.95) > 1e-12 {
		t.Errorf("D2W bonding 2 = %v, want %v", b2, 0.95)
	}
}

func TestTable3W2WFormulas(t *testing.T) {
	s := Stack3D{DieYields: []float64{0.9, 0.8}, BondYield: 0.97, Flow: ic.W2W}
	want := 0.9 * 0.8 * 0.97
	for i := 1; i <= 2; i++ {
		got, err := s.DieEffective(i)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("W2W die %d = %v, want %v", i, got, want)
		}
	}
	b, err := s.BondingEffective(1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(b-want) > 1e-12 {
		t.Errorf("W2W bonding = %v, want %v", b, want)
	}
}

// The paper's D2W-vs-W2W discussion: D2W has lower bonding yield but higher
// per-die yields because known-good dies are culled before stacking. With
// the Lakefield calibration, every D2W die effective yield must exceed the
// W2W one.
func TestD2WBeatsW2WPerDie(t *testing.T) {
	d2w, w2w := lakefieldStack(ic.D2W), lakefieldStack(ic.W2W)
	for i := 1; i <= 2; i++ {
		yd, _ := d2w.DieEffective(i)
		yw, _ := w2w.DieEffective(i)
		if yd <= yw {
			t.Errorf("die %d: D2W %v should beat W2W %v", i, yd, yw)
		}
	}
}

func TestStackYield(t *testing.T) {
	s := Stack3D{DieYields: []float64{0.9, 0.8}, BondYield: 0.95, Flow: ic.D2W}
	got, err := s.StackYield()
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.9 * 0.8 * 0.95; math.Abs(got-want) > 1e-12 {
		t.Errorf("stack yield = %v, want %v", got, want)
	}
	// Final-good probability is flow-independent.
	s.Flow = ic.W2W
	got2, _ := s.StackYield()
	if got2 != got {
		t.Errorf("stack yield should not depend on flow: %v vs %v", got, got2)
	}
}

func TestStack3DValidation(t *testing.T) {
	bad := []Stack3D{
		{DieYields: []float64{0.9}, BondYield: 0.9, Flow: ic.D2W},
		{DieYields: []float64{0.9, 1.2}, BondYield: 0.9, Flow: ic.D2W},
		{DieYields: []float64{0.9, 0.9}, BondYield: 0, Flow: ic.D2W},
		{DieYields: []float64{0.9, 0.9}, BondYield: 0.9, Flow: "sideways"},
	}
	for i, s := range bad {
		if _, err := s.DieEffective(1); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
	ok := Stack3D{DieYields: []float64{0.9, 0.9}, BondYield: 0.9, Flow: ic.D2W}
	if _, err := ok.DieEffective(3); err == nil {
		t.Error("out-of-range die index should error")
	}
	if _, err := ok.BondingEffective(2); err == nil {
		t.Error("out-of-range bonding index should error")
	}
}

func TestTable3ChipFirst(t *testing.T) {
	a := Assembly25D{
		DieYields:      []float64{0.9, 0.8},
		SubstrateYield: 0.95,
		Order:          ic.ChipFirst,
	}
	y1, err := a.DieEffective(1)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.9 * 0.95; math.Abs(y1-want) > 1e-12 {
		t.Errorf("chip-first die 1 = %v, want %v", y1, want)
	}
	sub, _ := a.SubstrateEffective()
	if math.Abs(sub-0.95) > 1e-12 {
		t.Errorf("chip-first substrate = %v, want 0.95", sub)
	}
	b, _ := a.BondingEffective()
	if b != 1 {
		t.Errorf("chip-first bonding = %v, want 1", b)
	}
}

func TestTable3ChipLast(t *testing.T) {
	a := Assembly25D{
		DieYields:      []float64{0.9, 0.8},
		SubstrateYield: 0.95,
		BondYields:     []float64{0.99, 0.98},
		Order:          ic.ChipLast,
	}
	prod := 0.99 * 0.98
	y2, err := a.DieEffective(2)
	if err != nil {
		t.Fatal(err)
	}
	if want := 0.8 * prod; math.Abs(y2-want) > 1e-12 {
		t.Errorf("chip-last die 2 = %v, want %v", y2, want)
	}
	sub, _ := a.SubstrateEffective()
	if want := 0.95 * prod; math.Abs(sub-want) > 1e-12 {
		t.Errorf("chip-last substrate = %v, want %v", sub, want)
	}
	b, _ := a.BondingEffective()
	if math.Abs(b-prod) > 1e-12 {
		t.Errorf("chip-last bonding = %v, want %v", b, prod)
	}
}

func TestAssembly25DValidation(t *testing.T) {
	bad := []Assembly25D{
		{DieYields: []float64{0.9}, SubstrateYield: 0.9, Order: ic.ChipFirst},
		{DieYields: []float64{0.9, 0.9}, SubstrateYield: 0, Order: ic.ChipFirst},
		{DieYields: []float64{0.9, 0.9}, SubstrateYield: 0.9, Order: ic.ChipLast,
			BondYields: []float64{0.9}}, // wrong bond count
		{DieYields: []float64{0.9, 0.9}, SubstrateYield: 0.9, Order: "chip-middle"},
	}
	for i, a := range bad {
		if _, err := a.DieEffective(1); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

// Property: every effective yield in a valid configuration stays in (0,1],
// and adding more dies to a D2W stack never raises die 1's effective yield.
func TestEffectiveYieldBounds(t *testing.T) {
	if err := quick.Check(func(y1, y2, yb float64) bool {
		clamp := func(v float64) float64 { return 0.5 + math.Mod(math.Abs(v), 0.5) }
		s := Stack3D{
			DieYields: []float64{clamp(y1), clamp(y2)},
			BondYield: clamp(yb),
			Flow:      ic.D2W,
		}
		e1, err := s.DieEffective(1)
		if err != nil {
			return false
		}
		s3 := Stack3D{
			DieYields: []float64{clamp(y1), clamp(y2), clamp(y2)},
			BondYield: clamp(yb),
			Flow:      ic.D2W,
		}
		e1tall, err := s3.DieEffective(1)
		if err != nil {
			return false
		}
		return e1 > 0 && e1 <= 1 && e1tall <= e1+1e-15
	}, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// The batched Effectives must reproduce the per-index methods bit-for-bit
// over realistic stacks (2–4 dies, both flows, a spread of yields): the
// core embodied model switched to the batched path, and the golden reports
// pin its floats.
func TestEffectivesMatchPerIndex(t *testing.T) {
	yields := [][]float64{
		{0.81, 0.93},
		{0.7, 0.85, 0.99},
		{0.6, 0.72, 0.88, 0.95},
		// Taller than the multiply-exact range: exercises the math.Pow
		// fallback of the power table (design validation allows stacks up
		// to 16 tiers, so exactness must hold past 4 dies too).
		{0.9, 0.91, 0.92, 0.93, 0.94, 0.95},
	}
	for _, dies := range yields {
		for _, bond := range []float64{0.9, 0.975, 1} {
			for _, flow := range []ic.BondFlow{ic.D2W, ic.W2W} {
				s := Stack3D{DieYields: dies, BondYield: bond, Flow: flow}
				eff, err := s.Effectives()
				if err != nil {
					t.Fatal(err)
				}
				for i := 1; i <= len(dies); i++ {
					want, err := s.DieEffective(i)
					if err != nil {
						t.Fatal(err)
					}
					if eff.Die[i-1] != want {
						t.Errorf("%v/%s: Die[%d] = %g, per-index %g", dies, flow, i, eff.Die[i-1], want)
					}
				}
				for i := 1; i <= len(dies)-1; i++ {
					want, err := s.BondingEffective(i)
					if err != nil {
						t.Fatal(err)
					}
					if eff.Bonding[i-1] != want {
						t.Errorf("%v/%s: Bonding[%d] = %g, per-index %g", dies, flow, i, eff.Bonding[i-1], want)
					}
				}
				want, err := s.StackYield()
				if err != nil {
					t.Fatal(err)
				}
				if eff.Stack != want {
					t.Errorf("%v/%s: Stack = %g, per-index %g", dies, flow, eff.Stack, want)
				}
			}
		}
	}
}

// The 2.5D batched path must equal the per-index methods exactly for both
// attach orders.
func TestAssemblyEffectivesMatchPerIndex(t *testing.T) {
	dies := []float64{0.8, 0.9, 0.95, 0.99, 0.7}
	bonds := []float64{0.99, 0.98, 0.97, 0.995, 0.96}
	for _, order := range []ic.AttachOrder{ic.ChipFirst, ic.ChipLast} {
		a := Assembly25D{DieYields: dies, SubstrateYield: 0.87, BondYields: bonds, Order: order}
		eff, err := a.Effectives()
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= len(dies); i++ {
			want, err := a.DieEffective(i)
			if err != nil {
				t.Fatal(err)
			}
			if eff.Die[i-1] != want {
				t.Errorf("%s: Die[%d] = %g, per-index %g", order, i, eff.Die[i-1], want)
			}
		}
		wantS, err := a.SubstrateEffective()
		if err != nil {
			t.Fatal(err)
		}
		if eff.Substrate != wantS {
			t.Errorf("%s: Substrate = %g, per-index %g", order, eff.Substrate, wantS)
		}
		wantB, err := a.BondingEffective()
		if err != nil {
			t.Fatal(err)
		}
		if eff.Bonding != wantB {
			t.Errorf("%s: Bonding = %g, per-index %g", order, eff.Bonding, wantB)
		}
	}
}

// Invalid configurations must fail Effectives exactly as they fail the
// per-index methods.
func TestEffectivesValidate(t *testing.T) {
	if _, err := (Stack3D{DieYields: []float64{0.9}, BondYield: 0.9, Flow: ic.D2W}).Effectives(); err == nil {
		t.Error("single-die stack should fail")
	}
	if _, err := (Assembly25D{DieYields: []float64{0.9, 0.9}, SubstrateYield: 0, Order: ic.ChipFirst}).Effectives(); err == nil {
		t.Error("zero substrate yield should fail")
	}
}

// The batched pass is the hot path: it must stay at a handful of fixed-size
// allocations per stack, not one per die index.
func TestEffectivesAllocs(t *testing.T) {
	s := Stack3D{DieYields: []float64{0.8, 0.9, 0.95}, BondYield: 0.99, Flow: ic.D2W}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := s.Effectives(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 4 {
		t.Errorf("Stack3D.Effectives allocates %.0f objects, budget 4", allocs)
	}
	a := Assembly25D{DieYields: []float64{0.8, 0.9}, SubstrateYield: 0.9,
		BondYields: []float64{0.99, 0.98}, Order: ic.ChipLast}
	allocs = testing.AllocsPerRun(100, func() {
		if _, err := a.Effectives(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 3 {
		t.Errorf("Assembly25D.Effectives allocates %.0f objects, budget 3", allocs)
	}
}
