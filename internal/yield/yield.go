// Package yield implements the paper's yield models: the negative-binomial
// die/substrate yield of Eq. 15 and the stacking-yield compositions of
// Table 3 that describe how individual process yields combine for
// D2W/W2W 3D stacks and chip-first/chip-last 2.5D assemblies.
//
// The package is pure math: every process yield (die, bond, substrate) is a
// parameter. The calibrated per-technology values live in internal/tech and
// internal/bonding.
package yield

import (
	"fmt"
	"math"

	"repro/internal/ic"
	"repro/internal/units"
)

// Die implements Eq. 15, the negative-binomial yield model:
//
//	y = (1 + A·D0/α)^(−α)
//
// with A the die area, D0 the defect density (defects/cm²) and α the
// process-complexity clustering parameter.
func Die(area units.Area, d0PerCM2, alpha float64) (float64, error) {
	if area <= 0 {
		return 0, fmt.Errorf("yield: non-positive area %v", area)
	}
	if d0PerCM2 < 0 {
		return 0, fmt.Errorf("yield: negative defect density %v", d0PerCM2)
	}
	if alpha <= 0 {
		return 0, fmt.Errorf("yield: non-positive clustering alpha %v", alpha)
	}
	return math.Pow(1+area.CM2()*d0PerCM2/alpha, -alpha), nil
}

// MustDie is Die for statically-valid inputs; it panics on error.
func MustDie(area units.Area, d0PerCM2, alpha float64) float64 {
	y, err := Die(area, d0PerCM2, alpha)
	if err != nil {
		panic(err)
	}
	return y
}

// Stack3D composes the per-process yields of an N-die 3D stack according to
// Table 3. DieYields[i] is the intrinsic (pre-stacking) yield of die i+1;
// BondYield is the per-operation yield of the chosen bonding method and
// flow. Dies are indexed bottom-up: die 1 is bonded first.
type Stack3D struct {
	DieYields []float64
	BondYield float64
	Flow      ic.BondFlow
}

func (s Stack3D) validate() error {
	if len(s.DieYields) < 2 {
		return fmt.Errorf("yield: 3D stack needs ≥2 dies, have %d", len(s.DieYields))
	}
	for i, y := range s.DieYields {
		if y <= 0 || y > 1 {
			return fmt.Errorf("yield: die %d yield %v outside (0,1]", i+1, y)
		}
	}
	if s.BondYield <= 0 || s.BondYield > 1 {
		return fmt.Errorf("yield: bond yield %v outside (0,1]", s.BondYield)
	}
	if !s.Flow.Valid() {
		return fmt.Errorf("yield: unknown bond flow %q", s.Flow)
	}
	return nil
}

// DieEffective returns Y_die_i of Table 3: the effective yield dividing
// die i's manufacturing carbon in Eq. 4. i is 1-based.
//
//	D2W: y_die_i · y_bond^(N−i)   (known-good dies; each later bonding
//	                               operation can still destroy the die)
//	W2W: Π_j y_die_j · y_bond^(N−1) (wafers bond blind: every die shares
//	                               the whole stack's fate)
func (s Stack3D) DieEffective(i int) (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	n := len(s.DieYields)
	if i < 1 || i > n {
		return 0, fmt.Errorf("yield: die index %d outside 1..%d", i, n)
	}
	switch s.Flow {
	case ic.D2W:
		return s.DieYields[i-1] * math.Pow(s.BondYield, float64(n-i)), nil
	case ic.W2W:
		p := math.Pow(s.BondYield, float64(n-1))
		for _, y := range s.DieYields {
			p *= y
		}
		return p, nil
	}
	return 0, fmt.Errorf("yield: unknown bond flow %q", s.Flow)
}

// BondingEffective returns Y_bonding_i of Table 3: the effective yield
// dividing bonding operation i's carbon in Eq. 11. i is 1-based and ranges
// over the N−1 bonding operations.
//
//	D2W: y_bond^(N−i)
//	W2W: Π_j y_die_j · y_bond^(N−1)
func (s Stack3D) BondingEffective(i int) (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	n := len(s.DieYields)
	if i < 1 || i > n-1 {
		return 0, fmt.Errorf("yield: bonding index %d outside 1..%d", i, n-1)
	}
	switch s.Flow {
	case ic.D2W:
		return math.Pow(s.BondYield, float64(n-i)), nil
	case ic.W2W:
		p := math.Pow(s.BondYield, float64(n-1))
		for _, y := range s.DieYields {
			p *= y
		}
		return p, nil
	}
	return 0, fmt.Errorf("yield: unknown bond flow %q", s.Flow)
}

// StackEffectives holds every Table 3 effective yield of a 3D stack,
// computed by Stack3D.Effectives in a single pass.
type StackEffectives struct {
	// Die[i-1] is Y_die_i (what DieEffective(i) returns).
	Die []float64
	// Bonding[i-1] is Y_bonding_i (what BondingEffective(i) returns); the
	// slice has N−1 entries for the N−1 bonding operations.
	Bonding []float64
	// Stack is the final-good probability (what StackYield returns).
	Stack float64
}

// Effectives computes every effective yield of the stack at once: one
// validation pass and one bond-yield power table replace the per-index
// math.Pow chains of DieEffective/BondingEffective — the hot path the
// embodied model walks once per die per candidate. The batched and
// per-index paths report bit-identical carbon for every legal stack height
// (pinned by TestEffectivesMatchPerIndex).
func (s Stack3D) Effectives() (*StackEffectives, error) {
	if err := s.validate(); err != nil {
		return nil, err
	}
	n := len(s.DieYields)
	// powers[k] = BondYield^k. Successive multiplication is bit-identical
	// to math.Pow for exponents ≤ 3 (one rounding per multiply, in the same
	// order Pow's square-and-multiply takes), so the common 2–4-high stacks
	// pay no pow calls; taller stacks fall back to math.Pow per exponent so
	// the table matches the per-index methods exactly at every height.
	powers := make([]float64, n)
	powers[0] = 1
	for k := 1; k < n; k++ {
		if k <= 3 {
			powers[k] = powers[k-1] * s.BondYield
		} else {
			powers[k] = math.Pow(s.BondYield, float64(k))
		}
	}
	eff := &StackEffectives{Die: make([]float64, n), Bonding: make([]float64, n-1)}
	switch s.Flow {
	case ic.D2W:
		for i := 1; i <= n; i++ {
			eff.Die[i-1] = s.DieYields[i-1] * powers[n-i]
		}
		for i := 1; i <= n-1; i++ {
			eff.Bonding[i-1] = powers[n-i]
		}
	case ic.W2W:
		// Every die and bond shares the whole stack's fate: one compound
		// probability, computed once instead of once per index.
		p := powers[n-1]
		for _, y := range s.DieYields {
			p *= y
		}
		for i := range eff.Die {
			eff.Die[i] = p
		}
		for i := range eff.Bonding {
			eff.Bonding[i] = p
		}
	default:
		return nil, fmt.Errorf("yield: unknown bond flow %q", s.Flow)
	}
	p := powers[n-1]
	for _, y := range s.DieYields {
		p *= y
	}
	eff.Stack = p
	return eff, nil
}

// StackYield returns the compound probability that the completed stack is
// good: all dies good and all bonds good. It is the same for D2W and W2W —
// the flows differ in *whose carbon is wasted* when something fails (the
// Table 3 divisors), not in the final-good probability of one assembly.
func (s Stack3D) StackYield() (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	p := math.Pow(s.BondYield, float64(len(s.DieYields)-1))
	for _, y := range s.DieYields {
		p *= y
	}
	return p, nil
}

// Assembly25D composes the per-process yields of a 2.5D assembly according
// to Table 3's chip-first/chip-last rows. DieYields[i] is die i+1's
// intrinsic yield, SubstrateYield the interposer/RDL substrate yield and
// BondYields[i] the yield of attaching die i+1 (chip-last flows).
type Assembly25D struct {
	DieYields      []float64
	SubstrateYield float64
	BondYields     []float64
	Order          ic.AttachOrder
}

func (a Assembly25D) validate() error {
	if len(a.DieYields) < 2 {
		return fmt.Errorf("yield: 2.5D assembly needs ≥2 dies, have %d", len(a.DieYields))
	}
	for i, y := range a.DieYields {
		if y <= 0 || y > 1 {
			return fmt.Errorf("yield: die %d yield %v outside (0,1]", i+1, y)
		}
	}
	if a.SubstrateYield <= 0 || a.SubstrateYield > 1 {
		return fmt.Errorf("yield: substrate yield %v outside (0,1]", a.SubstrateYield)
	}
	if !a.Order.Valid() {
		return fmt.Errorf("yield: unknown attach order %q", a.Order)
	}
	if a.Order == ic.ChipLast {
		if len(a.BondYields) != len(a.DieYields) {
			return fmt.Errorf("yield: chip-last needs one bond yield per die (%d != %d)",
				len(a.BondYields), len(a.DieYields))
		}
		for i, y := range a.BondYields {
			if y <= 0 || y > 1 {
				return fmt.Errorf("yield: bond %d yield %v outside (0,1]", i+1, y)
			}
		}
	}
	return nil
}

// bondProduct is Π_j y_bonding_j over all die attachments.
func (a Assembly25D) bondProduct() float64 {
	p := 1.0
	for _, y := range a.BondYields {
		p *= y
	}
	return p
}

// AssemblyEffectives holds every Table 3 effective yield of a 2.5D
// assembly, computed by Assembly25D.Effectives in a single pass.
type AssemblyEffectives struct {
	// Die[i-1] is Y_die_i (what DieEffective(i) returns).
	Die []float64
	// Substrate is Y_substrate (what SubstrateEffective returns).
	Substrate float64
	// Bonding is Y_bonding (what BondingEffective returns).
	Bonding float64
}

// Effectives computes every effective yield of the assembly at once: one
// validation pass and one shared bond-yield product replace the per-index
// recomputation of DieEffective (which rebuilds Π_j y_bonding_j for every
// die). The floats are identical to the per-index methods — the product is
// accumulated in the same order, just once.
func (a Assembly25D) Effectives() (*AssemblyEffectives, error) {
	if err := a.validate(); err != nil {
		return nil, err
	}
	eff := &AssemblyEffectives{Die: make([]float64, len(a.DieYields))}
	switch a.Order {
	case ic.ChipFirst:
		for i, y := range a.DieYields {
			eff.Die[i] = y * a.SubstrateYield
		}
		eff.Substrate = a.SubstrateYield
		eff.Bonding = 1
	case ic.ChipLast:
		bp := a.bondProduct()
		for i, y := range a.DieYields {
			eff.Die[i] = y * bp
		}
		eff.Substrate = a.SubstrateYield * bp
		eff.Bonding = bp
	default:
		return nil, fmt.Errorf("yield: unknown attach order %q", a.Order)
	}
	return eff, nil
}

// DieEffective returns Y_die_i of Table 3's 2.5D rows (1-based):
//
//	chip-first: y_die_i · y_substrate   (dies are embedded before the
//	            substrate is completed; a bad substrate wastes the die)
//	chip-last:  y_die_i · Π_j y_bonding_j (known-good substrate; every
//	            attach operation can waste the whole assembly)
func (a Assembly25D) DieEffective(i int) (float64, error) {
	if err := a.validate(); err != nil {
		return 0, err
	}
	if i < 1 || i > len(a.DieYields) {
		return 0, fmt.Errorf("yield: die index %d outside 1..%d", i, len(a.DieYields))
	}
	switch a.Order {
	case ic.ChipFirst:
		return a.DieYields[i-1] * a.SubstrateYield, nil
	case ic.ChipLast:
		return a.DieYields[i-1] * a.bondProduct(), nil
	}
	return 0, fmt.Errorf("yield: unknown attach order %q", a.Order)
}

// SubstrateEffective returns Y_substrate of Table 3's 2.5D rows:
//
//	chip-first: y_substrate
//	chip-last:  y_substrate · Π_j y_bonding_j
func (a Assembly25D) SubstrateEffective() (float64, error) {
	if err := a.validate(); err != nil {
		return 0, err
	}
	switch a.Order {
	case ic.ChipFirst:
		return a.SubstrateYield, nil
	case ic.ChipLast:
		return a.SubstrateYield * a.bondProduct(), nil
	}
	return 0, fmt.Errorf("yield: unknown attach order %q", a.Order)
}

// BondingEffective returns Y_bonding_i of Table 3's 2.5D rows: 1 for
// chip-first (the attach risk is folded into the substrate completion) and
// Π_j y_bonding_j for chip-last.
func (a Assembly25D) BondingEffective() (float64, error) {
	if err := a.validate(); err != nil {
		return 0, err
	}
	switch a.Order {
	case ic.ChipFirst:
		return 1, nil
	case ic.ChipLast:
		return a.bondProduct(), nil
	}
	return 0, fmt.Errorf("yield: unknown attach order %q", a.Order)
}
