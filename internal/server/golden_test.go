package server

import (
	"bytes"
	"encoding/json"
	"flag"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/server/apitypes"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// The /v1/evaluate body for the shipped Lakefield design is pinned: any
// model change, report-struct change or encoder change that moves a single
// byte of the wire format shows up as a golden diff. Clients depend on this
// shape.
func TestGoldenEvaluateLakefield(t *testing.T) {
	s := New(Options{})
	rec := post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{Design: loadLakefield(t)})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	// Pin the indented form: readable diffs, same bytes underneath.
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, rec.Body.Bytes(), "", "  "); err != nil {
		t.Fatal(err)
	}
	got := pretty.Bytes()

	path := filepath.Join("testdata", "evaluate_lakefield.golden.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("/v1/evaluate body for lakefield drifted from the golden file.\ngot:\n%s\nwant:\n%s\n(run with -update if the change is intended)",
			got, want)
	}
}

// The /v1/evaluate body for Lakefield under the shipped 2030-decarbonized
// profile (sent as an inline params overlay) is pinned too: the overlay
// path is part of the wire contract, and its report must stay distinct
// from the baseline golden above.
func TestGoldenEvaluateLakefieldWithProfile(t *testing.T) {
	overlay, err := os.ReadFile(filepath.Join("..", "..", "profiles", "grid-2030-decarbonized.json"))
	if err != nil {
		t.Fatal(err)
	}
	s := New(Options{})
	rec := post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{
		Design: loadLakefield(t),
		Params: json.RawMessage(overlay),
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var pretty bytes.Buffer
	if err := json.Indent(&pretty, rec.Body.Bytes(), "", "  "); err != nil {
		t.Fatal(err)
	}
	got := pretty.Bytes()

	path := filepath.Join("testdata", "evaluate_lakefield_grid2030.golden.json")
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to regenerate)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("profile /v1/evaluate body drifted from the golden file (run with -update if intended)\ngot:\n%s", got)
	}
	baseline, err := os.ReadFile(filepath.Join("testdata", "evaluate_lakefield.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Equal(got, baseline) {
		t.Error("profile evaluation reproduced the baseline golden")
	}
}
