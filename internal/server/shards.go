// The distributed-shard endpoints: POST /v1/shards/run executes one
// shard chunk for a remote coordinator, and /v1/replicas is fleet
// membership (POST registers/heartbeats a worker, GET lists health).
//
// A replica is stateless: the request carries the full spec, the reducer
// snapshots and the index range, and the handler runs the exact same
// chunk executor (jobs.RunShardChunk) the in-process runner uses — so a
// chunk computes byte-identical snapshots wherever it runs. The handler
// verifies the coordinator's spec/params/baseline fingerprints before
// evaluating: a replica resolving a different model must refuse the
// chunk rather than silently break byte-identity.
package server

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/faultpoint"
	"repro/internal/jobs"
	"repro/internal/server/apitypes"
)

// FaultPointShardRespond fires after a shard-run response is computed;
// an armed error makes the handler promise the full body but cut the
// connection halfway through it — the mid-body failure a replica dying
// between evaluation and delivery produces.
const FaultPointShardRespond = "server.shards.respond"

// handleShardRun evaluates one shard chunk for a remote coordinator.
func (s *Server) handleShardRun(w http.ResponseWriter, r *http.Request) int {
	var req apitypes.ShardRunRequest
	if err := s.decode(w, r, &req); err != nil {
		return decodeStatus(w, err)
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	// Chunk evaluation is bulk model work: it takes a regular evaluation
	// slot, and saturation answers 429 + Retry-After so the coordinator's
	// backoff (not a queue here) absorbs the pressure.
	release, err := s.acquire(ctx)
	if err != nil {
		return acquireStatus(w, err)
	}
	defer release()

	if req.BaselineFP != "" && req.BaselineFP != s.baseFP.String() {
		return writeError(w, http.StatusUnprocessableEntity, "baseline_mismatch",
			fmt.Sprintf("replica baseline params %s differ from coordinator baseline %s",
				s.baseFP.String(), req.BaselineFP))
	}
	eng, apiErr := s.resolveEngine(req.Params)
	if apiErr != nil {
		return writeError(w, errStatus(apiErr), apiErr.Code, apiErr.Message)
	}
	spec := jobs.Spec{Space: req.Space, Top: req.Top, Params: req.Params, Budget: req.Budget}
	if fp := spec.Fingerprint(); req.SpecFP != "" && fp != req.SpecFP {
		return writeError(w, http.StatusUnprocessableEntity, "spec_mismatch",
			fmt.Sprintf("spec fingerprints %s (replica) vs %s (coordinator) — mismatched builds?", fp, req.SpecFP))
	}
	if fp := spec.ParamsFingerprint(); req.ParamsFP != "" && fp != req.ParamsFP {
		return writeError(w, http.StatusUnprocessableEntity, "params_mismatch",
			fmt.Sprintf("params fingerprints %s (replica) vs %s (coordinator)", fp, req.ParamsFP))
	}
	space, serr := spec.Space.SpaceWith(eng.Model.GridDB())
	if serr != nil {
		return writeError(w, http.StatusBadRequest, "bad_request", "invalid space: "+serr.Error())
	}
	it, serr := space.Iter()
	if serr != nil {
		return writeError(w, http.StatusBadRequest, "bad_request",
			"space does not enumerate: "+serr.Error())
	}
	total := space.Size()
	if req.Budget > 0 && req.Budget < total {
		total = req.Budget
	}
	if !(0 <= req.Lo && req.Lo <= req.NextIndex && req.NextIndex <= req.ChunkHi &&
		req.ChunkHi <= req.Hi && req.Hi <= total) {
		return writeError(w, http.StatusBadRequest, "bad_request",
			fmt.Sprintf("inconsistent shard range: lo %d ≤ next %d ≤ chunk_hi %d ≤ hi %d ≤ total %d must hold",
				req.Lo, req.NextIndex, req.ChunkHi, req.Hi, total))
	}

	sc, rerr := jobs.RunShardChunk(ctx, eng, it.Plan(), req.Top, jobs.ShardCheckpoint{
		Lo: req.Lo, Hi: req.Hi, NextIndex: req.NextIndex,
		Ranked: req.Ranked, Frontier: req.Frontier, Stats: req.Stats,
	}, req.ChunkHi)
	if rerr != nil {
		if ctx.Err() != nil {
			return cancelStatus(w, ctx.Err())
		}
		// A restore failure (corrupt snapshots) or a contained worker
		// panic: the chunk is not computable here. The coordinator treats
		// any error as "re-run elsewhere", so one status fits all.
		return writeError(w, http.StatusUnprocessableEntity, "chunk_failed", rerr.Error())
	}
	s.shardRuns.Add(1)
	s.shardCands.Add(uint64(req.ChunkHi - req.NextIndex))

	body, merr := json.Marshal(apitypes.ShardRunResponse{
		NextIndex: sc.NextIndex,
		Evaluated: req.ChunkHi - req.NextIndex,
		Ranked:    sc.Ranked,
		Frontier:  sc.Frontier,
		Stats:     sc.Stats,
	})
	if merr != nil {
		return writeError(w, http.StatusInternalServerError, "internal", merr.Error())
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	if ferr := faultpoint.Hit(FaultPointShardRespond); ferr != nil {
		// Promise the full body, deliver half, and return: net/http closes
		// the connection short, so the coordinator reads an unexpected EOF
		// mid-body over a real wire — after this replica already spent the
		// evaluation (the stale/duplicated work the lease design absorbs).
		_, _ = w.Write(body[:len(body)/2])
		return http.StatusOK
	}
	_, _ = w.Write(body)
	return http.StatusOK
}

// handleReplicas serves fleet membership: POST registers (and
// re-registering is the heartbeat), GET lists the coordinator's health
// view of every replica.
func (s *Server) handleReplicas(w http.ResponseWriter, r *http.Request) int {
	switch r.Method {
	case http.MethodPost:
		var req apitypes.RegisterReplicaRequest
		if err := s.decode(w, r, &req); err != nil {
			return decodeStatus(w, err)
		}
		url := strings.TrimRight(req.URL, "/")
		if !strings.HasPrefix(url, "http://") && !strings.HasPrefix(url, "https://") {
			return writeError(w, http.StatusBadRequest, "bad_request",
				`"url" must be an absolute http(s) base URL`)
		}
		s.pool.Register(url)
		return writeJSON(w, apitypes.ReplicasResponse{Replicas: s.pool.Replicas()})
	case http.MethodGet:
		return writeJSON(w, apitypes.ReplicasResponse{Replicas: s.pool.Replicas()})
	default:
		w.Header().Set("Allow", "POST, GET")
		return writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"/v1/replicas requires POST or GET")
	}
}
