// The POST /v1/optimize handler: optimizer-driven search over a design
// space through internal/optimize, reusing the server's per-profile
// engines and the process-wide memoization cache. Unlike /v1/explore, the
// candidate count is not bounded — the server bounds the distinct embodied
// designs (the compiled plan's memory) and clamps the charged work to the
// configured budget ceiling, so a billion-candidate space is a legitimate
// request as long as the optimizer can settle it within the budget.
package server

import (
	"fmt"
	"net/http"

	"repro/internal/optimize"
	"repro/internal/server/apitypes"
)

func (s *Server) handleOptimize(w http.ResponseWriter, r *http.Request) int {
	var req apitypes.OptimizeRequest
	if err := s.decode(w, r, &req); err != nil {
		return decodeStatus(w, err)
	}
	var driver optimize.Driver
	if req.Driver != "" {
		var err error
		if driver, err = optimize.ParseDriver(req.Driver); err != nil {
			return writeError(w, http.StatusBadRequest, "bad_request", err.Error())
		}
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return acquireStatus(w, err)
	}
	defer release()
	// The engine resolves first so the space's locations are validated
	// against the request's parameter profile, not the default database.
	eng, apiErr := s.resolveEngine(req.Params)
	if apiErr != nil {
		return writeError(w, errStatus(apiErr), apiErr.Code, apiErr.Message)
	}
	space, err := req.Space.SpaceWith(eng.Model.GridDB())
	if err != nil {
		return writeError(w, http.StatusBadRequest, "bad_request",
			"invalid space: "+err.Error())
	}
	// Designs is computed from the axes — nothing is built for an
	// over-limit request. The candidate count is deliberately unchecked.
	if max := s.opts.maxOptimizeDesigns(); space.Designs() > max {
		return writeError(w, http.StatusRequestEntityTooLarge, "bad_request",
			fmt.Sprintf("space spans %d distinct embodied designs, over the server limit of %d",
				space.Designs(), max))
	}
	budget := s.opts.maxOptimizeBudget()
	if req.Budget > 0 && req.Budget < budget {
		budget = req.Budget
	}
	res, err := optimize.Run(ctx, eng, space, optimize.Options{
		Driver: driver, Seed: req.Seed, Budget: budget,
	})
	if err != nil {
		if ctx.Err() != nil {
			return cancelStatus(w, ctx.Err())
		}
		// The space decoded its axes but does not enumerate (e.g. an
		// invalid strategy/integration combination).
		return writeError(w, http.StatusUnprocessableEntity, "evaluation_failed",
			"optimization failed: "+err.Error())
	}
	s.optRuns.Add(1)
	if res.Stats.Complete {
		s.optComplete.Add(1)
	}
	s.optEvals.Add(uint64(res.Stats.Evaluations))
	s.optProbes.Add(uint64(res.Stats.BoundProbes))
	s.optPrunes.Add(uint64(res.Stats.Prunes))
	s.evaluated.Add(uint64(res.Stats.Evaluations))

	resp := apitypes.OptimizeResponse{
		Found: res.Found,
		Stats: apitypes.NewOptimizeStats(res.Stats),
	}
	if res.Found {
		best := apitypes.NewExploreResult(res.Best)
		resp.Best = &best
		resp.BestIndex = res.BestIndex
	}
	return writeJSON(w, resp)
}
