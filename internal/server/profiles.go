// The per-profile model cache: inline `params` overlays resolve to a
// (model, engine) pair keyed by the merged ParameterSet's fingerprint.
// Building a model from a profile costs a full baseline merge, validation
// and database construction, so resolved profiles are kept in a small LRU
// with a front index keyed by the raw overlay bytes — a repeated overlay
// is answered with one small hash, no merge. All profile engines share the
// server's one bounded memoization cache, where the fingerprint-mixed keys
// keep their entries apart.
package server

import (
	"container/list"
	"encoding/json"
	"hash/fnv"
	"sync"

	"repro/internal/core"
	"repro/internal/explore"
	"repro/internal/params"
	"repro/internal/server/apitypes"
)

// maxRawKeysPerProfile bounds how many distinct raw overlay spellings
// (whitespace, key order) may index one resolved profile, so an adversarial
// stream of reformatted-but-equivalent overlays cannot grow the front
// index; spellings beyond the bound simply pay the merge again.
const maxRawKeysPerProfile = 4

// profileEntry is one resolved overlay.
type profileEntry struct {
	fp      params.Fingerprint
	engine  *explore.Engine
	rawKeys []string // front-index keys pointing at this entry
}

// profileCache is the bounded fingerprint → engine LRU with a raw-bytes
// front index.
type profileCache struct {
	mu    sync.Mutex
	limit int
	byFP  map[params.Fingerprint]*list.Element
	byRaw map[string]*list.Element // hash(raw overlay) → same entries
	lru   *list.List               // front = most recently used

	loaded    uint64
	hits      uint64
	evictions uint64

	// retired accumulates the engine counters of evicted profiles so the
	// aggregate /v1/stats view does not lose served traffic.
	retired explore.Stats
}

func newProfileCache(limit int) *profileCache {
	return &profileCache{
		limit: limit,
		byFP:  make(map[params.Fingerprint]*list.Element),
		byRaw: make(map[string]*list.Element),
		lru:   list.New(),
	}
}

// rawKey hashes the raw overlay bytes into a compact front-index key.
func rawKey(raw []byte) string {
	h := fnv.New128a()
	_, _ = h.Write(raw)
	return string(h.Sum(nil))
}

// getRaw answers a repeated overlay from the front index without merging.
func (pc *profileCache) getRaw(key string) (*explore.Engine, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.byRaw[key]
	if !ok {
		return nil, false
	}
	pc.lru.MoveToFront(el)
	pc.hits++
	return el.Value.(*profileEntry).engine, true
}

// get returns the cached engine for a fingerprint, refreshing its LRU slot
// and registering the raw spelling that led here.
func (pc *profileCache) get(fp params.Fingerprint, key string) (*explore.Engine, bool) {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	el, ok := pc.byFP[fp]
	if !ok {
		return nil, false
	}
	pc.lru.MoveToFront(el)
	pc.hits++
	pc.indexRaw(el, key)
	return el.Value.(*profileEntry).engine, true
}

// put inserts a freshly built profile, evicting the least recently used
// entries over the limit. Concurrent builders of the same fingerprint keep
// the first inserted engine (both are equivalent).
func (pc *profileCache) put(fp params.Fingerprint, key string, eng *explore.Engine) *explore.Engine {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	if el, ok := pc.byFP[fp]; ok {
		pc.lru.MoveToFront(el)
		pc.indexRaw(el, key)
		return el.Value.(*profileEntry).engine
	}
	el := pc.lru.PushFront(&profileEntry{fp: fp, engine: eng})
	pc.byFP[fp] = el
	pc.indexRaw(el, key)
	pc.loaded++
	for pc.limit > 0 && pc.lru.Len() > pc.limit {
		back := pc.lru.Back()
		ent := back.Value.(*profileEntry)
		accumulateEngine(&pc.retired, ent.engine.Stats())
		delete(pc.byFP, ent.fp)
		for _, k := range ent.rawKeys {
			delete(pc.byRaw, k)
		}
		pc.lru.Remove(back)
		pc.evictions++
	}
	return eng
}

// indexRaw links a raw overlay spelling to an entry (bounded per entry).
// Caller holds pc.mu.
func (pc *profileCache) indexRaw(el *list.Element, key string) {
	if _, ok := pc.byRaw[key]; ok {
		return
	}
	ent := el.Value.(*profileEntry)
	if len(ent.rawKeys) >= maxRawKeysPerProfile {
		return
	}
	ent.rawKeys = append(ent.rawKeys, key)
	pc.byRaw[key] = el
}

// stats snapshots the counters.
func (pc *profileCache) stats() apitypes.ProfileStats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return apitypes.ProfileStats{
		Loaded:    pc.loaded,
		Hits:      pc.hits,
		Evictions: pc.evictions,
		Resident:  pc.lru.Len(),
		Limit:     pc.limit,
	}
}

// accumulateEngine folds one engine's counters into an aggregate (counter
// fields only — entry/shard gauges come from the shared cache).
func accumulateEngine(agg *explore.Stats, st explore.Stats) {
	agg.Evaluations += st.Evaluations
	agg.CacheHits += st.CacheHits
	agg.Evictions += st.Evictions
	agg.EmbodiedEvaluations += st.EmbodiedEvaluations
	agg.EmbodiedCacheHits += st.EmbodiedCacheHits
	agg.EmbodiedEvictions += st.EmbodiedEvictions
}

// engineTotals sums the evaluation counters of every profile engine this
// cache has ever held — resident engines live, evicted engines from the
// retired accumulators — so /v1/stats reflects all served traffic, not
// just the baseline engine's.
func (pc *profileCache) engineTotals() explore.Stats {
	pc.mu.Lock()
	defer pc.mu.Unlock()
	agg := pc.retired
	for el := pc.lru.Front(); el != nil; el = el.Next() {
		accumulateEngine(&agg, el.Value.(*profileEntry).engine.Stats())
	}
	return agg
}

// resolveEngine maps a request's optional params overlay to the engine that
// evaluates it: the shared baseline engine for no overlay (or an overlay
// that resolves back to the baseline), a cached or freshly built profile
// engine otherwise. Overlay failures are structured invalid_params errors.
// Callers invoke this after acquiring an evaluation slot: the merge and
// model construction are CPU work the MaxConcurrent limiter must bound.
func (s *Server) resolveEngine(raw json.RawMessage) (*explore.Engine, *apitypes.Error) {
	if len(raw) == 0 || string(raw) == "null" {
		return s.engine, nil
	}
	key := rawKey(raw)
	if eng, ok := s.profiles.getRaw(key); ok {
		return eng, nil
	}
	ps, err := params.Overlay(s.baseSet, raw)
	if err != nil {
		return nil, &apitypes.Error{Code: "invalid_params", Message: err.Error()}
	}
	fp, err := ps.Fingerprint()
	if err != nil {
		return nil, &apitypes.Error{Code: "invalid_params", Message: err.Error()}
	}
	if fp == s.baseFP {
		return s.engine, nil
	}
	if eng, ok := s.profiles.get(fp, key); ok {
		return eng, nil
	}
	m, err := core.New(ps)
	if err != nil {
		return nil, &apitypes.Error{Code: "invalid_params", Message: err.Error()}
	}
	eng := explore.New(m)
	eng.Workers = s.opts.Workers
	eng.Cache = s.shared
	return s.profiles.put(fp, key, eng), nil
}
