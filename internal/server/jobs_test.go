package server

import (
	"bufio"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/explore"
	"repro/internal/faultpoint"
	"repro/internal/jobs"
	"repro/internal/server/apitypes"
)

// jobSpaceBody is the 48-candidate space every job test submits.
func jobSpaceBody() map[string]any {
	return map[string]any{
		"space": map[string]any{
			"name":           "http-test",
			"integrations":   []string{"hybrid-3d"},
			"strategies":     []string{"homogeneous", "heterogeneous"},
			"nodes_nm":       []int{5, 7},
			"gates":          []float64{17e9, 500e9},
			"use_locations":  []string{"usa", "norway", "india"},
			"lifetime_years": []float64{5, 10},
		},
		"top": 10,
	}
}

// newJobServer builds a server with a fast-checkpointing job tier and
// shuts the tier down with the test.
func newJobServer(t *testing.T, opts Options) *Server {
	t.Helper()
	if opts.JobCheckpointEvery == 0 {
		opts.JobCheckpointEvery = 8
	}
	s := New(opts)
	if err := s.JobsErr(); err != nil {
		t.Fatalf("job tier failed to boot: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

// waitJobState polls GET /v1/jobs/{id} until the wanted state.
func waitJobState(t *testing.T, s *Server, id, want string) apitypes.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		rec := get(t, s, "/v1/jobs/"+id)
		if rec.Code != http.StatusOK {
			t.Fatalf("GET job = %d: %s", rec.Code, rec.Body)
		}
		var st apitypes.JobStatus
		if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
			t.Fatalf("bad status body: %v\n%s", err, rec.Body)
		}
		if st.State == want {
			return st
		}
		if jobs.State(st.State).Terminal() {
			t.Fatalf("job %s reached %q (error %q), want %q", id, st.State, st.Error, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %q", id, want)
	return apitypes.JobStatus{}
}

func TestJobSubmitLifecycleHTTP(t *testing.T) {
	s := newJobServer(t, Options{})
	rec := post(t, s, "/v1/jobs", jobSpaceBody())
	if rec.Code != http.StatusAccepted {
		t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
	}
	var st apitypes.JobStatus
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatalf("bad submit body: %v", err)
	}
	if st.ID == "" || st.State != "queued" || st.Total != 48 || st.Tenant != "default" {
		t.Fatalf("submit response = %+v", st)
	}

	final := waitJobState(t, s, st.ID, "done")
	if final.Summary == nil || final.NextIndex != 48 {
		t.Fatalf("done status lacks summary or progress: %+v", final)
	}
	var sum jobs.Summary
	if err := json.Unmarshal(final.Summary, &sum); err != nil {
		t.Fatalf("summary does not parse: %v", err)
	}
	if sum.Candidates != 48 || len(sum.Ranked) != 10 {
		t.Fatalf("summary = %+v", sum)
	}

	// The event stream replays start to finish with contiguous seqs.
	rec = get(t, s, "/v1/jobs/"+st.ID+"/events")
	if rec.Code != http.StatusOK {
		t.Fatalf("events = %d: %s", rec.Code, rec.Body)
	}
	var events []apitypes.JobEvent
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		var ev apitypes.JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event line: %v\n%s", err, sc.Text())
		}
		events = append(events, ev)
	}
	for i, ev := range events {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d", i, ev.Seq)
		}
	}
	last := events[len(events)-1]
	if last.Type != "state" || last.State != "done" {
		t.Fatalf("stream does not end with the terminal state: %+v", last)
	}

	// Resuming from a cursor returns exactly the suffix.
	rec = get(t, s, "/v1/jobs/"+st.ID+"/events?from="+itoa(last.Seq))
	lines := strings.Count(rec.Body.String(), "\n")
	if lines != 1 {
		t.Fatalf("resume from final seq returned %d events, want 1", lines)
	}

	// The stats surface counts the tier.
	var stats apitypes.StatsResponse
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Jobs == nil || stats.Jobs.Submitted != 1 || stats.Jobs.Done != 1 {
		t.Fatalf("stats.jobs = %+v", stats.Jobs)
	}
}

func TestJobErrorsHTTP(t *testing.T) {
	s := newJobServer(t, Options{})
	body := jobSpaceBody()
	body["space"].(map[string]any)["use_locations"] = []string{"atlantis"}
	decodeError(t, post(t, s, "/v1/jobs", body), http.StatusBadRequest, "bad_request")

	decodeError(t, get(t, s, "/v1/jobs/j999999"), http.StatusNotFound, "not_found")
	decodeError(t, get(t, s, "/v1/jobs/j999999/events"), http.StatusNotFound, "not_found")
	decodeError(t, get(t, s, "/v1/jobs/j000001/nope"), http.StatusNotFound, "not_found")

	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httptest.NewRequest(http.MethodPut, "/v1/jobs", nil))
	decodeError(t, rec, http.StatusMethodNotAllowed, "method_not_allowed")
}

func TestJobIdempotencyHTTP(t *testing.T) {
	s := newJobServer(t, Options{})
	submit := func() apitypes.JobStatus {
		var buf strings.Builder
		_ = json.NewEncoder(&buf).Encode(jobSpaceBody())
		req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(buf.String()))
		req.Header.Set("Idempotency-Key", "retry-1")
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusAccepted {
			t.Fatalf("submit = %d: %s", rec.Code, rec.Body)
		}
		var st apitypes.JobStatus
		_ = json.Unmarshal(rec.Body.Bytes(), &st)
		return st
	}
	a, b := submit(), submit()
	if a.ID != b.ID {
		t.Fatalf("idempotent resubmit created a second job: %s vs %s", a.ID, b.ID)
	}
}

func TestJobQuota429(t *testing.T) {
	s := newJobServer(t, Options{MaxActiveJobsPerTenant: 1})
	// Hold the first job in-flight so the second submission trips the
	// active quota.
	disarm := faultpoint.Arm(jobs.FaultPointSink, func() error {
		time.Sleep(500 * time.Microsecond)
		return nil
	})
	defer disarm()
	if rec := post(t, s, "/v1/jobs", jobSpaceBody()); rec.Code != http.StatusAccepted {
		t.Fatalf("first submit = %d", rec.Code)
	}
	rec := post(t, s, "/v1/jobs", jobSpaceBody())
	decodeError(t, rec, http.StatusTooManyRequests, "quota_exceeded")
	if ra := rec.Header().Get("Retry-After"); ra == "" {
		t.Error("429 without a Retry-After header")
	}
	// A different tenant is unaffected.
	var buf strings.Builder
	_ = json.NewEncoder(&buf).Encode(jobSpaceBody())
	req := httptest.NewRequest(http.MethodPost, "/v1/jobs", strings.NewReader(buf.String()))
	req.Header.Set("X-Tenant", "other")
	rec2 := httptest.NewRecorder()
	s.ServeHTTP(rec2, req)
	if rec2.Code != http.StatusAccepted {
		t.Fatalf("other tenant submit = %d: %s", rec2.Code, rec2.Body)
	}
}

func TestJobCancelHTTP(t *testing.T) {
	s := newJobServer(t, Options{})
	disarm := faultpoint.Arm(jobs.FaultPointSink, func() error {
		time.Sleep(500 * time.Microsecond)
		return nil
	})
	defer disarm()
	rec := post(t, s, "/v1/jobs", jobSpaceBody())
	var st apitypes.JobStatus
	_ = json.Unmarshal(rec.Body.Bytes(), &st)

	del := httptest.NewRecorder()
	s.ServeHTTP(del, httptest.NewRequest(http.MethodDelete, "/v1/jobs/"+st.ID, nil))
	if del.Code != http.StatusOK {
		t.Fatalf("cancel = %d: %s", del.Code, del.Body)
	}
	waitJobState(t, s, st.ID, "cancelled")
}

// TestJobEventsKilledClient is the HTTP half of the chaos contract: a
// client whose connection dies mid-stream reattaches with ?from= and
// still observes one contiguous event sequence.
func TestJobEventsKilledClient(t *testing.T) {
	s := newJobServer(t, Options{JobCheckpointEvery: 4})
	srv := httptest.NewServer(s)
	defer srv.Close()
	disarm := faultpoint.Arm(jobs.FaultPointSink, func() error {
		time.Sleep(300 * time.Microsecond)
		return nil
	})
	defer disarm()

	rec := post(t, s, "/v1/jobs", jobSpaceBody())
	var st apitypes.JobStatus
	_ = json.Unmarshal(rec.Body.Bytes(), &st)

	// First connection: read two events, then kill the transport.
	resp, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	sc := bufio.NewScanner(resp.Body)
	var seen []apitypes.JobEvent
	for len(seen) < 2 && sc.Scan() {
		var ev apitypes.JobEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("bad event: %v", err)
		}
		seen = append(seen, ev)
	}
	resp.Body.Close() // the "killed" connection

	// Reattach with the resume cursor; drain to the terminal event.
	from := seen[len(seen)-1].Seq + 1
	resp2, err := http.Get(srv.URL + "/v1/jobs/" + st.ID + "/events?from=" + itoa(from))
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	sc2 := bufio.NewScanner(resp2.Body)
	for sc2.Scan() {
		var ev apitypes.JobEvent
		if err := json.Unmarshal(sc2.Bytes(), &ev); err != nil {
			t.Fatalf("bad event: %v", err)
		}
		seen = append(seen, ev)
	}
	for i, ev := range seen {
		if ev.Seq != i+1 {
			t.Fatalf("event %d has seq %d — the reattached stream has a gap", i, ev.Seq)
		}
	}
	last := seen[len(seen)-1]
	if last.Type != "state" || !jobs.State(last.State).Terminal() {
		t.Fatalf("stream does not end at a terminal state: %+v", last)
	}
}

func TestReadyzDrain(t *testing.T) {
	s := newJobServer(t, Options{})
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusOK {
		t.Fatalf("readyz before drain = %d", rec.Code)
	}
	s.BeginDrain()
	if rec := get(t, s, "/readyz"); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("readyz during drain = %d, want 503", rec.Code)
	}
	// Liveness stays green for the whole drain window.
	if rec := get(t, s, "/healthz"); rec.Code != http.StatusOK {
		t.Fatalf("healthz during drain = %d, want 200", rec.Code)
	}
	rec := post(t, s, "/v1/jobs", jobSpaceBody())
	decodeError(t, rec, http.StatusServiceUnavailable, "draining")
	if rec.Header().Get("Retry-After") == "" {
		t.Error("draining rejection without a Retry-After header")
	}
}

// TestAcquireSaturated429 pins the fail-fast admission path: a server
// with every evaluation slot busy rejects immediately with 429 and a
// Retry-After, instead of queuing the request until its deadline expires
// and misreporting the saturation as a timeout.
func TestAcquireSaturated429(t *testing.T) {
	s := New(Options{MaxConcurrent: 1})
	s.sem <- struct{}{} // occupy the only slot
	defer func() { <-s.sem }()

	req := apitypes.EvaluateRequest{Design: loadLakefield(t)}
	rec := post(t, s, "/v1/evaluate", req)
	decodeError(t, rec, http.StatusTooManyRequests, "saturated")
	if rec.Header().Get("Retry-After") == "" {
		t.Error("saturated rejection without a Retry-After header")
	}
}

// TestExploreClientGone499 pins the /v1/explore disconnect accounting: a
// client that vanishes mid-stream is recorded as 499 in the endpoint
// metrics, not as a success or a timeout.
func TestExploreClientGone499(t *testing.T) {
	s := New(Options{})
	s.engine.ScalarOnly = true // route evaluations through the faultable scalar path
	srv := httptest.NewServer(s)
	defer srv.Close()
	disarm := faultpoint.Arm(explore.FaultPointEvaluate, func() error {
		time.Sleep(300 * time.Microsecond)
		return nil
	})
	defer disarm()

	body := strings.NewReader(`{"space": {"nodes_nm": [5, 7], "gates": [17e9, 500e9]}}`)
	resp, err := http.Post(srv.URL+"/v1/explore", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	// Read one result line to prove the stream started, then vanish.
	if _, err := bufio.NewReader(resp.Body).ReadString('\n'); err != nil {
		t.Fatalf("no first line: %v", err)
	}
	resp.Body.Close()

	em := s.metrics["/v1/explore"]
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if em.errors.Load() == 1 {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("disconnect not accounted as an error (requests %d, errors %d)",
		em.requests.Load(), em.errors.Load())
}

// TestExploreTimeoutInBand pins the committed-stream timeout path: once
// the NDJSON 200 is on the wire, a deadline expiry surfaces as an
// in-band {"type":"error"} event with code "timeout".
func TestExploreTimeoutInBand(t *testing.T) {
	s := New(Options{RequestTimeout: 50 * time.Millisecond})
	s.engine.ScalarOnly = true
	disarm := faultpoint.Arm(explore.FaultPointEvaluate, func() error {
		time.Sleep(2 * time.Millisecond)
		return nil
	})
	defer disarm()

	rec := post(t, s, "/v1/explore",
		`{"space": {"nodes_nm": [5, 7], "gates": [17e9, 500e9]}}`)
	if rec.Code != http.StatusOK {
		// httptest.ResponseRecorder reports the committed 200 even though
		// the handler returned 503 for metrics.
		t.Fatalf("recorded status = %d", rec.Code)
	}
	var sawResult bool
	var last apitypes.ExploreEvent
	sc := bufio.NewScanner(rec.Body)
	for sc.Scan() {
		if err := json.Unmarshal(sc.Bytes(), &last); err != nil {
			t.Fatalf("bad stream line: %v\n%s", err, sc.Text())
		}
		if last.Type == "result" {
			sawResult = true
		}
	}
	if !sawResult {
		t.Fatal("stream timed out before the first result; slow the fault down")
	}
	if last.Type != "error" || last.Error == nil || last.Error.Code != "timeout" {
		t.Fatalf("stream does not end with the in-band timeout event: %+v", last)
	}
	if em := s.metrics["/v1/explore"]; em.errors.Load() != 1 {
		t.Errorf("timeout not accounted as an error")
	}
}
