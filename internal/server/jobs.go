// The /v1/jobs endpoints: the crash-resumable async exploration tier.
// Where POST /v1/explore holds one connection open for the whole
// enumeration, a job detaches the work from the request — the server
// checkpoints progress durably (internal/jobs), clients poll status or
// tail the event stream with a resume cursor, and a killed server picks
// every unfinished job back up from its last checkpoint on restart.
//
//	POST   /v1/jobs             submit (X-Tenant, Idempotency-Key headers)
//	GET    /v1/jobs             list this tenant's jobs
//	GET    /v1/jobs/{id}        status + partial summary
//	GET    /v1/jobs/{id}/events NDJSON event stream, resumable via ?from=
//	DELETE /v1/jobs/{id}        cancel
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/explore"
	"repro/internal/jobs"
	"repro/internal/server/apitypes"
)

// newJobService builds the async tier over the server's engine resolver.
// A nil Options.JobStore means in-memory (jobs do not survive restarts;
// pass a FileStore for durability).
func (s *Server) newJobService() (*jobs.Service, error) {
	store := s.opts.JobStore
	if store == nil {
		store = &jobs.MemStore{}
	}
	return jobs.New(jobs.Options{
		Store: store,
		Resolve: func(params []byte) (*explore.Engine, error) {
			eng, apiErr := s.resolveEngine(params)
			if apiErr != nil {
				return nil, apiErr
			}
			return eng, nil
		},
		MaxRunning:      s.opts.MaxRunningJobs,
		CheckpointEvery: s.opts.JobCheckpointEvery,
		MaxSpace:        s.opts.MaxJobSpace,
		JobShards:       s.opts.JobShards,
		ShardAbove:      s.opts.JobShardAbove,
		// Shard chunks are offered to the replica pool first; an empty or
		// unhealthy pool declines and the chunk runs in-process.
		Dispatch:           s.pool.Run,
		RatePerSec:         s.opts.JobRatePerSec,
		Burst:              s.opts.JobBurst,
		MaxActivePerTenant: s.opts.MaxActiveJobsPerTenant,
		// Shedding watches the interactive tier: when request slots
		// saturate, parked jobs give their CPU back to request traffic.
		Load: func() float64 {
			return float64(s.inFlight.Load()) / float64(s.opts.maxConcurrent())
		},
		HighWater: s.opts.JobShedHighWater,
		LowWater:  s.opts.JobShedLowWater,
		Logger:    s.opts.Logger,
	})
}

// Jobs exposes the job service (cmd/serve shutdown, tests). Nil when the
// store failed to replay at boot — see JobsErr.
func (s *Server) Jobs() *jobs.Service { return s.jobsSvc }

// JobsErr reports why the job tier is unavailable (nil when it is fine).
func (s *Server) JobsErr() error { return s.jobsErr }

// tenantOf reads the submitter identity. Single-operator deployments can
// ignore tenancy entirely; every request then shares one bucket.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get("X-Tenant"); t != "" {
		return t
	}
	return "default"
}

// wireJobStatus flattens a job record (+progress, +summary bytes) to its
// wire form.
func wireJobStatus(j jobs.Job, p jobs.Progress, summary []byte) apitypes.JobStatus {
	return apitypes.JobStatus{
		ID:                j.ID,
		Tenant:            j.Tenant,
		State:             string(j.State),
		SpecFingerprint:   j.SpecFP,
		ParamsFingerprint: j.ParamsFP,
		Error:             j.Error,
		Panic:             j.Panic,
		NextIndex:         p.NextIndex,
		Total:             p.Total,
		Summary:           summary,
		Created:           j.Created,
		Started:           j.Started,
		Finished:          j.Finished,
	}
}

func wireJobEvent(ev jobs.Event) apitypes.JobEvent {
	out := apitypes.JobEvent{
		Seq:     ev.Seq,
		Type:    ev.Type,
		State:   string(ev.State),
		Summary: ev.Summary,
		Error:   ev.Error,
	}
	if ev.Progress != nil {
		out.Progress = &apitypes.JobProgress{
			NextIndex: ev.Progress.NextIndex, Total: ev.Progress.Total,
		}
		for _, sp := range ev.Progress.Shards {
			out.Progress.Shards = append(out.Progress.Shards,
				apitypes.JobShardProgress{Lo: sp.Lo, Hi: sp.Hi, NextIndex: sp.NextIndex})
		}
	}
	return out
}

// jobErrStatus renders a jobs-tier error: 429 with Retry-After for
// admission rejections (503 while draining), 400/422 for invalid specs
// and parameter overlays, 404 for unknown jobs.
func jobErrStatus(w http.ResponseWriter, err error) int {
	var qe *jobs.QuotaError
	if errors.As(err, &qe) {
		status := http.StatusTooManyRequests
		if qe.Code == "draining" {
			status = http.StatusServiceUnavailable
		}
		secs := int(qe.RetryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
		return writeError(w, status, qe.Code, qe.Message)
	}
	var se *jobs.SpecError
	if errors.As(err, &se) {
		return writeError(w, http.StatusBadRequest, "bad_request", se.Message)
	}
	var ae *apitypes.Error
	if errors.As(err, &ae) {
		return writeError(w, errStatus(ae), ae.Code, ae.Message)
	}
	if errors.Is(err, jobs.ErrNotFound) {
		return writeError(w, http.StatusNotFound, "not_found", "no such job")
	}
	return writeError(w, http.StatusInternalServerError, "internal", err.Error())
}

// jobsUnavailable guards every handler when the tier failed to boot.
func (s *Server) jobsUnavailable(w http.ResponseWriter) int {
	return writeError(w, http.StatusServiceUnavailable, "jobs_unavailable",
		"job tier unavailable: "+s.jobsErr.Error())
}

// handleJobs serves the /v1/jobs collection: POST submits, GET lists.
func (s *Server) handleJobs(w http.ResponseWriter, r *http.Request) int {
	if s.jobsSvc == nil {
		return s.jobsUnavailable(w)
	}
	switch r.Method {
	case http.MethodPost:
		return s.handleJobSubmit(w, r)
	case http.MethodGet:
		tenant := tenantOf(r)
		out := make([]apitypes.JobStatus, 0, 8)
		for _, j := range s.jobsSvc.List() {
			if j.Tenant != tenant {
				continue
			}
			_, p, sum, err := s.jobsSvc.Get(j.ID)
			if err != nil {
				continue
			}
			out = append(out, wireJobStatus(j, p, sum))
		}
		return writeJSON(w, map[string]any{"jobs": out})
	default:
		w.Header().Set("Allow", "POST, GET")
		return writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"/v1/jobs requires POST or GET")
	}
}

func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) int {
	var req apitypes.JobRequest
	if err := s.decode(w, r, &req); err != nil {
		return decodeStatus(w, err)
	}
	job, err := s.jobsSvc.Submit(tenantOf(r), r.Header.Get("Idempotency-Key"), jobs.Spec{
		Space:  req.Space,
		Top:    req.Top,
		Params: req.Params,
		Budget: req.Budget,
	})
	if err != nil {
		return jobErrStatus(w, err)
	}
	_, p, sum, err := s.jobsSvc.Get(job.ID)
	if err != nil {
		return jobErrStatus(w, err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusAccepted)
	_ = json.NewEncoder(w).Encode(wireJobStatus(job, p, sum))
	return http.StatusAccepted
}

// handleJob serves one job: GET status, GET events, DELETE cancel.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) int {
	if s.jobsSvc == nil {
		return s.jobsUnavailable(w)
	}
	rest := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	id, sub, _ := strings.Cut(rest, "/")
	if id == "" || (sub != "" && sub != "events") {
		return writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no such endpoint %q (see docs/API.md)", r.URL.Path))
	}
	switch {
	case sub == "events" && r.Method == http.MethodGet:
		return s.handleJobEvents(w, r, id)
	case sub == "events":
		w.Header().Set("Allow", http.MethodGet)
		return writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"/v1/jobs/{id}/events requires GET")
	case r.Method == http.MethodGet:
		job, p, sum, err := s.jobsSvc.Get(id)
		if err != nil {
			return jobErrStatus(w, err)
		}
		if sum == nil && p.NextIndex > 0 {
			// Running (or parked) with durable progress: render the partial
			// summary as of the last checkpoint.
			sum, _ = s.jobsSvc.PartialSummary(id)
		}
		return writeJSON(w, wireJobStatus(job, p, sum))
	case r.Method == http.MethodDelete:
		job, err := s.jobsSvc.Cancel(id)
		if err != nil {
			return jobErrStatus(w, err)
		}
		_, p, sum, _ := s.jobsSvc.Get(id)
		return writeJSON(w, wireJobStatus(job, p, sum))
	default:
		w.Header().Set("Allow", "GET, DELETE")
		return writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			"/v1/jobs/{id} requires GET or DELETE")
	}
}

// handleJobEvents tails a job's event stream as NDJSON. ?from=<seq>
// resumes after a disconnect: events are per-job, 1-based, contiguous,
// so a client that saw seq n asks for from=n+1 and misses nothing. The
// stream ends after the terminal state event.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request, id string) int {
	from := 1
	if raw := r.URL.Query().Get("from"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n < 1 {
			return writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("invalid ?from=%q: want a positive event seq", raw))
		}
		from = n
	}
	evs, notify, stop, err := s.jobsSvc.EventsSince(id, from)
	if err != nil {
		return jobErrStatus(w, err)
	}
	defer stop()

	out := newNDJSONWriter(w)
	next := from
	writeBatch := func(batch []jobs.Event) (terminal bool, err error) {
		for _, ev := range batch {
			if err := out.event(wireJobEvent(ev)); err != nil {
				return false, errClientGone
			}
			next = ev.Seq + 1
			if ev.Type == "state" && ev.State.Terminal() {
				terminal = true
			}
		}
		out.flush()
		return terminal, nil
	}
	done, err := writeBatch(evs)
	for !done && err == nil {
		select {
		case <-r.Context().Done():
			return statusClientClosedRequest
		case <-notify:
		case <-time.After(time.Second):
			// Fallback poll: a notify tick can be dropped under load (the
			// channel is non-blocking on the emit side).
		}
		done, err = writeBatch(s.jobsSvc.More(id, next))
	}
	if err != nil {
		return statusClientClosedRequest
	}
	return http.StatusOK
}
