package server

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"repro/internal/params"
	"repro/internal/server/apitypes"
)

// An inline params overlay steers the evaluation: a decarbonized use grid
// lowers operational carbon against the baseline evaluation of the same
// design, and the baseline result is untouched.
func TestEvaluateWithParamsOverlay(t *testing.T) {
	s := New(Options{})
	d := loadLakefield(t)

	base := post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{Design: d})
	if base.Code != http.StatusOK {
		t.Fatalf("baseline: %d: %s", base.Code, base.Body)
	}
	overlay := post(t, s, "/v1/evaluate", map[string]any{
		"design": d,
		"params": map[string]any{
			"version": "clean-use",
			"grid":    map[string]any{"intensities": map[string]any{"usa": 40}},
		},
	})
	if overlay.Code != http.StatusOK {
		t.Fatalf("overlay: %d: %s", overlay.Code, overlay.Body)
	}
	if base.Body.String() == overlay.Body.String() {
		t.Error("params overlay did not change the evaluation")
	}

	type resp struct {
		Report struct {
			Operational struct {
				LifetimeCarbon float64 `json:"LifetimeCarbon"`
			} `json:"Operational"`
		} `json:"report"`
	}
	var b, o resp
	if err := json.Unmarshal(base.Body.Bytes(), &b); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(overlay.Body.Bytes(), &o); err != nil {
		t.Fatal(err)
	}
	if o.Report.Operational.LifetimeCarbon >= b.Report.Operational.LifetimeCarbon {
		t.Errorf("decarbonized use grid did not lower operational carbon: %v vs %v",
			o.Report.Operational.LifetimeCarbon, b.Report.Operational.LifetimeCarbon)
	}

	// The same design under the baseline again: byte-identical to the first
	// call — the profile cache did not contaminate the baseline engine.
	again := post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{Design: d})
	if base.Body.String() != again.Body.String() {
		t.Error("baseline evaluation drifted after a profile evaluation")
	}
}

// A malformed or out-of-range overlay is a structured invalid_params error.
func TestEvaluateRejectsBadParams(t *testing.T) {
	s := New(Options{})
	d := loadLakefield(t)
	cases := []struct {
		name    string
		overlay string
		want    string
	}{
		{"unknown-section", `{"gird":{}}`, "schema"},
		{"negative", `{"grid":{"intensities":{"usa":-4}}}`, "outside"},
		{"bad-yield", `{"bonding":{"attach_yield_25d":2}}`, "outside (0,1]"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rec := post(t, s, "/v1/evaluate",
				`{"design": `+mustJSON(t, d)+`, "params": `+c.overlay+`}`)
			decodeError(t, rec, http.StatusBadRequest, "invalid_params")
			if !strings.Contains(rec.Body.String(), c.want) {
				t.Errorf("error body %q does not mention %q", rec.Body, c.want)
			}
		})
	}
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// /v1/stats reports the per-profile model-cache counters: profiles loaded,
// hits for repeated overlays, evictions under the bound.
func TestStatsProfileCounters(t *testing.T) {
	s := New(Options{MaxProfiles: 2})
	d := loadLakefield(t)

	overlayReq := func(v string, ci float64) {
		t.Helper()
		rec := post(t, s, "/v1/evaluate", map[string]any{
			"design": d,
			"params": map[string]any{
				"version": v,
				"grid":    map[string]any{"intensities": map[string]any{"usa": ci}},
			},
		})
		if rec.Code != http.StatusOK {
			t.Fatalf("%s: %d: %s", v, rec.Code, rec.Body)
		}
	}

	overlayReq("p1", 100) // load 1
	overlayReq("p1", 100) // hit
	overlayReq("p2", 200) // load 2
	overlayReq("p3", 300) // load 3 → evicts p1 (limit 2)
	overlayReq("p1", 100) // rebuilt → load 4

	var st apitypes.StatsResponse
	rec := get(t, s, "/v1/stats")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Profiles.Loaded != 4 {
		t.Errorf("profiles loaded = %d, want 4", st.Profiles.Loaded)
	}
	if st.Profiles.Hits != 1 {
		t.Errorf("profile hits = %d, want 1", st.Profiles.Hits)
	}
	if st.Profiles.Evictions != 2 {
		t.Errorf("profile evictions = %d, want 2", st.Profiles.Evictions)
	}
	if st.Profiles.Resident != 2 || st.Profiles.Limit != 2 {
		t.Errorf("resident/limit = %d/%d, want 2/2", st.Profiles.Resident, st.Profiles.Limit)
	}
	// Engine counters aggregate profile traffic: three distinct profile
	// evaluations computed (p1, p2, p3 — all against one shared memo
	// cache), and the repeated/rebuilt p1 requests answered as cache hits
	// even across the eviction, because the shared cache outlives the
	// profile engine.
	if st.Engine.Evaluations != 3 {
		t.Errorf("aggregated engine evaluations = %d, want 3", st.Engine.Evaluations)
	}
	if st.Engine.CacheHits != 2 {
		t.Errorf("aggregated engine cache hits = %d, want 2", st.Engine.CacheHits)
	}
}

// Repeating the byte-identical overlay takes the raw-bytes fast path: the
// second request is a profile hit without re-merging (observable as a hit
// even though the overlay JSON was never canonicalized).
func TestRepeatedOverlayHitsRawIndex(t *testing.T) {
	s := New(Options{})
	d := loadLakefield(t)
	body := `{"design": ` + mustJSON(t, d) + `, "params": {"version":"p","grid":{"intensities":{"usa":70}}}}`
	for i := 0; i < 3; i++ {
		rec := post(t, s, "/v1/evaluate", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("request %d: %d: %s", i, rec.Code, rec.Body)
		}
	}
	var st apitypes.StatsResponse
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Profiles.Loaded != 1 || st.Profiles.Hits != 2 {
		t.Errorf("loaded/hits = %d/%d, want 1/2", st.Profiles.Loaded, st.Profiles.Hits)
	}
}

// An overlay that merges back to the exact baseline resolves to the
// baseline engine — no profile slot is spent on it.
func TestBaselineEquivalentOverlay(t *testing.T) {
	s := New(Options{})
	d := loadLakefield(t)
	rec := post(t, s, "/v1/evaluate", map[string]any{
		"design": d,
		"params": map[string]any{"version": params.BaselineVersion},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("%d: %s", rec.Code, rec.Body)
	}
	var st apitypes.StatsResponse
	if err := json.Unmarshal(get(t, s, "/v1/stats").Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Profiles.Loaded != 0 {
		t.Errorf("baseline-equivalent overlay loaded %d profiles, want 0", st.Profiles.Loaded)
	}
}

// /v1/meta reports the active baseline's version and fingerprint, and a
// custom baseline changes both.
func TestMetaReportsFingerprint(t *testing.T) {
	s := New(Options{})
	var meta apitypes.MetaResponse
	if err := json.Unmarshal(get(t, s, "/v1/meta").Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if meta.ParamsVersion != params.BaselineVersion {
		t.Errorf("params_version = %q, want %q", meta.ParamsVersion, params.BaselineVersion)
	}
	wantFP, err := params.Default().Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if meta.ParamsFingerprint != wantFP.String() {
		t.Errorf("params_fingerprint = %q, want %q", meta.ParamsFingerprint, wantFP)
	}

	custom, err := params.Overlay(params.Default(),
		[]byte(`{"version":"custom","grid":{"intensities":{"usa":99}}}`))
	if err != nil {
		t.Fatal(err)
	}
	s2 := New(Options{BaselineParams: custom})
	var meta2 apitypes.MetaResponse
	if err := json.Unmarshal(get(t, s2, "/v1/meta").Body.Bytes(), &meta2); err != nil {
		t.Fatal(err)
	}
	if meta2.ParamsVersion != "custom" {
		t.Errorf("custom params_version = %q", meta2.ParamsVersion)
	}
	if meta2.ParamsFingerprint == meta.ParamsFingerprint {
		t.Error("custom baseline shares the default fingerprint")
	}
}

// An exploration under an overlay runs on the profile's engine: the stream
// completes and its results differ from the baseline stream.
func TestExploreWithParamsOverlay(t *testing.T) {
	s := New(Options{})
	space := apitypes.SpaceSpec{NodesNM: []int{7}, Integrations: []string{"2D", "hybrid-3d"}}
	run := func(body any) string {
		rec := post(t, s, "/v1/explore", body)
		if rec.Code != http.StatusOK {
			t.Fatalf("%d: %s", rec.Code, rec.Body)
		}
		return rec.Body.String()
	}
	baseOut := run(apitypes.ExploreRequest{Space: space})
	profOut := run(map[string]any{
		"space": space,
		"params": map[string]any{
			"version": "clean-fab",
			"grid":    map[string]any{"intensities": map[string]any{"taiwan": 60}},
		},
	})
	if baseOut == profOut {
		t.Error("params overlay did not change the exploration stream")
	}
	if !strings.Contains(profOut, `"type":"summary"`) {
		t.Error("profile exploration stream is missing its summary")
	}
}

// The unknown-location error must list every valid location through the
// structured error envelope — the CLI and HTTP self-correction path.
func TestUnknownLocationErrorListsValidLocations(t *testing.T) {
	s := New(Options{})
	d := loadLakefield(t)
	d.UseLocation = "middle-earth"
	rec := post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{Design: d})
	decodeError(t, rec, http.StatusUnprocessableEntity, "invalid_design")
	body := rec.Body.String()
	for _, want := range []string{"middle-earth", "known:", "taiwan", "usa", "norway"} {
		if !strings.Contains(body, want) {
			t.Errorf("error envelope %q does not mention %q", body, want)
		}
	}
}

// Validation follows the profile: a location added by the overlay is
// usable in the design (and in a space spec), and a location deleted by
// the overlay is rejected up front as invalid_design — not deep in
// evaluation.
func TestProfileValidationFollowsOverlay(t *testing.T) {
	s := New(Options{})
	d := loadLakefield(t)
	d.UseLocation = "iceland"

	// Baseline: unknown location.
	rec := post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{Design: d})
	decodeError(t, rec, http.StatusUnprocessableEntity, "invalid_design")

	// Profile adds the location: the design evaluates.
	rec = post(t, s, "/v1/evaluate", map[string]any{
		"design": d,
		"params": map[string]any{
			"version": "iceland",
			"grid":    map[string]any{"intensities": map[string]any{"iceland": 28}},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("profile-added location rejected: %d: %s", rec.Code, rec.Body)
	}

	// Profile deletes a default location: a design naming it fails
	// validation with the structured error.
	d2 := loadLakefield(t)
	rec = post(t, s, "/v1/evaluate", map[string]any{
		"design": d2, // uses usa
		"params": map[string]any{
			"version": "no-usa",
			"grid":    map[string]any{"intensities": map[string]any{"usa": nil}},
		},
	})
	decodeError(t, rec, http.StatusUnprocessableEntity, "invalid_design")

	// Space specs validate against the profile too.
	rec = post(t, s, "/v1/explore", map[string]any{
		"space": map[string]any{"nodes_nm": []int{7}, "integrations": []string{"2D"},
			"use_locations": []string{"iceland"}},
		"params": map[string]any{
			"version": "iceland",
			"grid":    map[string]any{"intensities": map[string]any{"iceland": 28}},
		},
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("profile-added location rejected in space spec: %d: %s", rec.Code, rec.Body)
	}
}
