package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"

	"repro/internal/server/apitypes"
)

// The profiling endpoints are strictly opt-in.
func TestProfilingEndpoints(t *testing.T) {
	off := New(Options{})
	rec := httptest.NewRecorder()
	off.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusNotFound {
		t.Errorf("profiling off: /debug/pprof/ = %d, want 404", rec.Code)
	}

	on := New(Options{EnableProfiling: true})
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("profiling on: /debug/pprof/ = %d, want 200", rec.Code)
	}
	rec = httptest.NewRecorder()
	on.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/symbol", nil))
	if rec.Code != http.StatusOK {
		t.Errorf("profiling on: /debug/pprof/symbol = %d, want 200", rec.Code)
	}
}

// A one-million-point exploration must stream under a flat heap: the
// pipeline decodes candidates positionally, the summary comes from bounded
// reducers, and the NDJSON flows out with client backpressure — nothing
// scales with the space. The old handler retained every candidate, every
// chunk of results and every compact point; this asserts none of that came
// back. (~1M real evaluations: seconds of CPU, skipped in -short runs.)
func TestExploreMillionPointsUnderHeapCeiling(t *testing.T) {
	if testing.Short() {
		t.Skip("1M-point sweep in -short mode")
	}

	// 8 integrations × one strategy × 125k lifetimes = exactly the default
	// MaxSpace. Distinct lifetimes defeat the memo cache on purpose — every
	// candidate is a real evaluation, the worst case for retention.
	years := make([]float64, 125_000)
	for i := range years {
		years[i] = 1 + float64(i)/10_000
	}
	srv := New(Options{
		CacheLimit:     4096,
		RequestTimeout: -1, // the sweep legitimately outlives the default 60s budget on slow runners
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	req := apitypes.ExploreRequest{
		Space: apitypes.SpaceSpec{
			Name:          "million",
			LifetimeYears: years,
		},
		Top: 10,
	}
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/explore", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore: %d", resp.StatusCode)
	}

	const heapCeiling = 256 << 20 // bytes; the old handler's point buffer alone was ~80 MB
	var peakHeap uint64
	sample := func() {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		if ms.HeapAlloc > peakHeap {
			peakHeap = ms.HeapAlloc
		}
	}

	results := 0
	var summaryLine string
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, `{"type":"result"`):
			results++
			if results%65536 == 0 {
				sample()
			}
		default:
			summaryLine = line
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	sample()

	if results != 1_000_000 {
		t.Errorf("streamed %d results, want 1000000", results)
	}
	var ev apitypes.ExploreEvent
	if err := json.Unmarshal([]byte(summaryLine), &ev); err != nil {
		t.Fatalf("last line is not a summary: %v (%q)", err, truncate(summaryLine))
	}
	if ev.Type != "summary" || ev.Summary == nil {
		t.Fatalf("stream did not end in a summary: %q", truncate(summaryLine))
	}
	if ev.Summary.Candidates != 1_000_000 || ev.Summary.Evaluated != 1_000_000 {
		t.Errorf("summary scale: %+v", ev.Summary)
	}
	if len(ev.Summary.Ranked) != 10 {
		t.Errorf("ranked %d IDs, want 10", len(ev.Summary.Ranked))
	}
	if len(ev.Summary.Frontier) == 0 {
		t.Error("empty frontier")
	}
	if ev.Summary.Stats.Evictions == 0 {
		t.Error("a 1M-evaluation sweep through a 4096-entry cache must evict")
	}
	if peakHeap > heapCeiling {
		t.Errorf("peak heap %d MB over the %d MB ceiling — the stream is retaining per-candidate state",
			peakHeap>>20, heapCeiling>>20)
	}
	t.Logf("peak sampled heap: %d MB", peakHeap>>20)
}

func truncate(s string) string {
	if len(s) > 200 {
		return s[:200] + "..."
	}
	return fmt.Sprintf("%.200s", s)
}
