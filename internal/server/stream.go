// The POST /v1/explore handler: design-space exploration streamed as
// NDJSON, so the first results of a large sweep reach the client while the
// tail is still evaluating.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/explore"
	"repro/internal/server/apitypes"
)

// ndjsonWriter emits one JSON value per line, flushing after every write
// batch when the ResponseWriter supports it.
type ndjsonWriter struct {
	w   http.ResponseWriter
	enc *json.Encoder
}

func newNDJSONWriter(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // proxies: do not buffer the stream
	return &ndjsonWriter{w: w, enc: json.NewEncoder(w)}
}

func (n *ndjsonWriter) event(ev apitypes.ExploreEvent) error { return n.enc.Encode(ev) }

func (n *ndjsonWriter) flush() {
	if f, ok := n.w.(http.Flusher); ok {
		f.Flush()
	}
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) int {
	var req apitypes.ExploreRequest
	if err := s.decode(w, r, &req); err != nil {
		return decodeStatus(w, err)
	}
	space, err := req.Space.Space()
	if err != nil {
		return writeError(w, http.StatusBadRequest, "bad_request",
			"invalid space: "+err.Error())
	}
	cands, err := space.Enumerate()
	if err != nil {
		return writeError(w, http.StatusUnprocessableEntity, "evaluation_failed",
			"space does not enumerate: "+err.Error())
	}
	if max := s.opts.maxSpace(); len(cands) > max {
		return writeError(w, http.StatusRequestEntityTooLarge, "bad_request",
			"space enumerates "+itoa(len(cands))+" candidates, over the server limit of "+itoa(max))
	}

	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, ok := s.acquire(ctx)
	if !ok {
		return cancelStatus(w, ctx.Err())
	}
	defer release()

	// Headers and the first chunk commit the 200; later failures can only
	// be reported in-stream as an error event.
	out := newNDJSONWriter(w)
	// Retain only compact points for the closing summary — full reports of
	// a near-MaxSpace sweep would pin GBs for the whole request while the
	// bounded cache evicts underneath.
	points := make([]explore.Point, 0, len(cands))
	failed := 0
	chunk := s.opts.streamChunk()
	for start := 0; start < len(cands); start += chunk {
		end := start + chunk
		if end > len(cands) {
			end = len(cands)
		}
		results, err := s.engine.Evaluate(ctx, cands[start:end])
		if err != nil {
			// The 200 is committed, so the failure is in-band; the returned
			// status only feeds metrics and the request log.
			code, status := "cancelled", statusClientClosedRequest
			if errors.Is(err, context.DeadlineExceeded) {
				code, status = "timeout", http.StatusServiceUnavailable
			}
			_ = out.event(apitypes.ExploreEvent{Type: "error",
				Error: &apitypes.Error{Code: code, Message: err.Error()}})
			out.flush()
			return status
		}
		for _, res := range results {
			s.evaluated.Add(1)
			if res.Err != nil {
				failed++
			} else {
				points = append(points, explore.PointOf(res))
			}
			ev := apitypes.NewExploreResult(res)
			if err := out.event(apitypes.ExploreEvent{Type: "result", Result: &ev}); err != nil {
				return statusClientClosedRequest // client went away mid-stream
			}
		}
		out.flush()
	}

	ranked := make([]explore.Point, len(points))
	copy(ranked, points)
	explore.RankPoints(ranked)
	if req.Top > 0 && req.Top < len(ranked) {
		ranked = ranked[:req.Top]
	}
	summary := apitypes.ExploreSummary{
		Candidates: len(cands),
		Evaluated:  len(points),
		Failed:     failed,
		Ranked:     pointIDs(ranked),
		Frontier:   pointIDs(explore.FrontierPoints(points)),
		Stats:      apitypes.NewEngineStats(s.engine.Stats()),
	}
	_ = out.event(apitypes.ExploreEvent{Type: "summary", Summary: &summary})
	out.flush()
	return http.StatusOK
}

func pointIDs(pts []explore.Point) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = p.ID
	}
	return out
}

func itoa(n int) string { return strconv.Itoa(n) }
