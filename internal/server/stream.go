// The POST /v1/explore handler: design-space exploration streamed as
// NDJSON through the engine's constant-memory pipeline. Candidates are
// decoded positionally and results flow straight from the worker pool to
// the wire in enumeration order; the closing summary comes from online
// reducers (bounded top-K, running Pareto frontier), so the handler's
// memory stays O(Top + frontier) however large the space — a million-point
// sweep streams under a flat heap.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"repro/internal/explore"
	"repro/internal/server/apitypes"
)

// ndjsonWriter emits one JSON value per line, flushing after every write
// batch when the ResponseWriter supports it.
type ndjsonWriter struct {
	w   http.ResponseWriter
	enc *json.Encoder
}

func newNDJSONWriter(w http.ResponseWriter) *ndjsonWriter {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("X-Accel-Buffering", "no") // proxies: do not buffer the stream
	return &ndjsonWriter{w: w, enc: json.NewEncoder(w)}
}

// event encodes one stream line (an ExploreEvent or a JobEvent).
func (n *ndjsonWriter) event(ev any) error { return n.enc.Encode(ev) }

func (n *ndjsonWriter) flush() {
	if f, ok := n.w.(http.Flusher); ok {
		f.Flush()
	}
}

// errClientGone marks a failed NDJSON write: the client disconnected
// mid-stream, so there is nobody left to send an error event to.
var errClientGone = errors.New("server: client disconnected mid-stream")

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) int {
	var req apitypes.ExploreRequest
	if err := s.decode(w, r, &req); err != nil {
		return decodeStatus(w, err)
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return acquireStatus(w, err)
	}
	defer release()
	// The engine resolves first so the space's locations are validated
	// against the request's parameter profile, not the default database.
	eng, apiErr := s.resolveEngine(req.Params)
	if apiErr != nil {
		return writeError(w, errStatus(apiErr), apiErr.Code, apiErr.Message)
	}
	space, err := req.Space.SpaceWith(eng.Model.GridDB())
	if err != nil {
		return writeError(w, http.StatusBadRequest, "bad_request",
			"invalid space: "+err.Error())
	}
	// Size is computed from the axes — the space is never enumerated, so
	// an over-limit request is rejected without building anything.
	if max := s.opts.maxSpace(); space.Size() > max {
		return writeError(w, http.StatusRequestEntityTooLarge, "bad_request",
			"space enumerates "+itoa(space.Size())+" candidates, over the server limit of "+itoa(max))
	}
	it, err := space.Iter()
	if err != nil {
		return writeError(w, http.StatusUnprocessableEntity, "evaluation_failed",
			"space does not enumerate: "+err.Error())
	}

	// Headers and the first chunk commit the 200; later failures can only
	// be reported in-stream as an error event.
	out := newNDJSONWriter(w)
	// Online reducers replace the old retain-every-point summary buffers:
	// the ranking keeps Top survivors (everything when Top ≤ 0 — the
	// documented "rank all" mode, which is inherently O(candidates)) and
	// the frontier keeps only its Pareto points.
	ranked := explore.NewPointTopK(req.Top)
	frontier := explore.NewPointFrontier()
	var stats explore.RunningStats
	chunk := s.opts.streamChunk()
	sinceFlush := 0
	_, err = eng.StreamSource(ctx, it, func(res explore.Result) error {
		s.evaluated.Add(1)
		stats.Add(res)
		if res.Err == nil {
			p := explore.PointOf(res)
			ranked.Add(p)
			frontier.Add(p)
		}
		ev := apitypes.NewExploreResult(res)
		if err := out.event(apitypes.ExploreEvent{Type: "result", Result: &ev}); err != nil {
			return errClientGone
		}
		if sinceFlush++; sinceFlush >= chunk {
			out.flush()
			sinceFlush = 0
		}
		return nil
	})
	if err != nil {
		if errors.Is(err, errClientGone) {
			return statusClientClosedRequest
		}
		// The 200 is committed, so the failure is in-band; the returned
		// status only feeds metrics and the request log.
		code, status := "cancelled", statusClientClosedRequest
		if errors.Is(err, context.DeadlineExceeded) {
			code, status = "timeout", http.StatusServiceUnavailable
		}
		_ = out.event(apitypes.ExploreEvent{Type: "error",
			Error: &apitypes.Error{Code: code, Message: err.Error()}})
		out.flush()
		return status
	}

	summary := apitypes.ExploreSummary{
		Candidates: it.Len(),
		Evaluated:  stats.OK,
		Failed:     stats.Failed,
		Ranked:     pointIDs(ranked.Points()),
		Frontier:   pointIDs(frontier.Points()),
		Stats:      apitypes.NewEngineStats(eng.Stats()),
	}
	_ = out.event(apitypes.ExploreEvent{Type: "summary", Summary: &summary})
	out.flush()
	return http.StatusOK
}

func pointIDs(pts []explore.Point) []string {
	out := make([]string, len(pts))
	for i, p := range pts {
		out[i] = p.ID
	}
	return out
}

func itoa(n int) string { return strconv.Itoa(n) }
