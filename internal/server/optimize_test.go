package server

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"

	"repro/internal/explore"
	"repro/internal/server/apitypes"
)

// optimizeSpec is a small (but multi-block) space every optimizer test
// shares: 1080 candidates across 12 (gates×node, fab) blocks.
func optimizeSpec() apitypes.SpaceSpec {
	return apitypes.SpaceSpec{
		Name:          "opt",
		Strategies:    []string{"homogeneous", "heterogeneous"},
		NodesNM:       []int{5, 7, 14},
		Gates:         []float64{17e9, 60e9},
		FabLocations:  []string{"taiwan", "norway"},
		UseLocations:  []string{"usa", "india", "renewable"},
		LifetimeYears: []float64{2, 10},
	}
}

func postOptimize(t *testing.T, s *Server, req apitypes.OptimizeRequest) apitypes.OptimizeResponse {
	t.Helper()
	rec := post(t, s, "/v1/optimize", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp apitypes.OptimizeResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestOptimizeProvesOptimum: an omitted budget resolves to the server
// ceiling, which covers this space, so the run must prove the optimum and
// match an independent enumeration of the same spec.
func TestOptimizeProvesOptimum(t *testing.T) {
	s := New(Options{})
	resp := postOptimize(t, s, apitypes.OptimizeRequest{Space: optimizeSpec(), Seed: 5})
	if !resp.Found || resp.Best == nil {
		t.Fatalf("no optimum found: %+v", resp)
	}
	if !resp.Stats.Complete {
		t.Fatalf("run within the default budget did not complete: %+v", resp.Stats)
	}
	if resp.Stats.Evaluations+resp.Stats.BoundProbes >= resp.Stats.SpaceSize {
		t.Errorf("optimizer charged the whole space: %+v", resp.Stats)
	}

	space, err := optimizeSpec().Space()
	if err != nil {
		t.Fatal(err)
	}
	top := explore.NewTopK(1)
	var idx, bestIdx int
	if _, err := s.Engine().Stream(context.Background(), space, func(r explore.Result) error {
		if r.Err == nil {
			if top.Add(r); top.Results()[0].Candidate.ID == r.Candidate.ID {
				bestIdx = idx
			}
		}
		idx++
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	want := top.Results()[0]
	if resp.Best.ID != want.Candidate.ID || resp.BestIndex != bestIdx {
		t.Fatalf("optimum %q (index %d), enumeration says %q (index %d)",
			resp.Best.ID, resp.BestIndex, want.Candidate.ID, bestIdx)
	}
	if resp.Best.TotalKg != want.Total() {
		t.Fatalf("optimum total %v, enumeration says %v", resp.Best.TotalKg, want.Total())
	}
}

// TestOptimizeDeterministicAcrossRequests: identical requests replay
// byte-identical responses, even though the second run is answered from
// the warm process-wide cache.
func TestOptimizeDeterministicAcrossRequests(t *testing.T) {
	s := New(Options{})
	req := apitypes.OptimizeRequest{Space: optimizeSpec(), Driver: "anneal", Seed: 42}
	a := post(t, s, "/v1/optimize", req)
	b := post(t, s, "/v1/optimize", req)
	if a.Code != http.StatusOK || b.Code != http.StatusOK {
		t.Fatalf("status %d / %d", a.Code, b.Code)
	}
	if a.Body.String() != b.Body.String() {
		t.Fatalf("responses differ across identical requests:\n%s\nvs\n%s", a.Body, b.Body)
	}
}

func TestOptimizeBudgetClamped(t *testing.T) {
	s := New(Options{MaxOptimizeBudget: 40})
	for _, reqBudget := range []int{0, 25, 1000} {
		resp := postOptimize(t, s, apitypes.OptimizeRequest{Space: optimizeSpec(), Budget: reqBudget})
		limit := 40
		if reqBudget > 0 && reqBudget < limit {
			limit = reqBudget
		}
		if charged := resp.Stats.Evaluations + resp.Stats.BoundProbes; charged > limit {
			t.Errorf("budget %d: charged %d over the effective limit %d", reqBudget, charged, limit)
		}
		if resp.Stats.Complete {
			t.Errorf("budget %d: implausible proof on a %d-candidate space under 40 charges",
				reqBudget, resp.Stats.SpaceSize)
		}
	}
}

func TestOptimizeDesignCapEnforced(t *testing.T) {
	s := New(Options{MaxOptimizeDesigns: 10})
	decodeError(t, post(t, s, "/v1/optimize", apitypes.OptimizeRequest{Space: optimizeSpec()}),
		http.StatusRequestEntityTooLarge, "bad_request")
}

func TestOptimizeBadDriver(t *testing.T) {
	s := New(Options{})
	decodeError(t, post(t, s, "/v1/optimize",
		apitypes.OptimizeRequest{Space: optimizeSpec(), Driver: "gradient"}),
		http.StatusBadRequest, "bad_request")
}

func TestOptimizeInvalidSpace(t *testing.T) {
	s := New(Options{})
	spec := optimizeSpec()
	spec.UseLocations = []string{"atlantis"}
	decodeError(t, post(t, s, "/v1/optimize", apitypes.OptimizeRequest{Space: spec}),
		http.StatusBadRequest, "bad_request")
}

func TestOptimizeMethodNotAllowed(t *testing.T) {
	s := New(Options{})
	decodeError(t, get(t, s, "/v1/optimize"),
		http.StatusMethodNotAllowed, "method_not_allowed")
}

// TestOptimizeStatsCounters: /v1/stats aggregates the optimizer's charged
// work and proof count.
func TestOptimizeStatsCounters(t *testing.T) {
	s := New(Options{})
	resp := postOptimize(t, s, apitypes.OptimizeRequest{Space: optimizeSpec(), Driver: "halving"})
	rec := get(t, s, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status = %d", rec.Code)
	}
	var stats apitypes.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	opt := stats.Optimize
	if opt.Runs != 1 || opt.Complete != 1 {
		t.Errorf("runs/complete = %d/%d, want 1/1", opt.Runs, opt.Complete)
	}
	if opt.Evaluations != uint64(resp.Stats.Evaluations) ||
		opt.BoundProbes != uint64(resp.Stats.BoundProbes) ||
		opt.Prunes != uint64(resp.Stats.Prunes) {
		t.Errorf("counter mismatch: stats %+v vs run %+v", opt, resp.Stats)
	}
	if stats.DesignsEvaluated < uint64(resp.Stats.Evaluations) {
		t.Errorf("designs_evaluated %d misses the optimizer's %d evaluations",
			stats.DesignsEvaluated, resp.Stats.Evaluations)
	}
	ep, ok := stats.Endpoints["/v1/optimize"]
	if !ok || ep.Requests != 1 {
		t.Errorf("endpoint metrics missing or wrong: %+v", stats.Endpoints)
	}
}
