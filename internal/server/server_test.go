package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/design"
	"repro/internal/server/apitypes"
	"repro/internal/split"
)

// loadLakefield reads the shipped validation design.
func loadLakefield(t *testing.T) *design.Design {
	t.Helper()
	d, err := design.Load(filepath.Join("..", "..", "designs", "lakefield.json"))
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// post sends a JSON body and returns the recorder.
func post(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	var buf bytes.Buffer
	if raw, ok := body.(string); ok {
		buf.WriteString(raw)
	} else if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, path, &buf)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	return rec
}

func get(t *testing.T, h http.Handler, path string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
	return rec
}

// decodeError asserts the structured error envelope.
func decodeError(t *testing.T, rec *httptest.ResponseRecorder, status int, code string) {
	t.Helper()
	if rec.Code != status {
		t.Fatalf("status = %d, want %d (body %s)", rec.Code, status, rec.Body)
	}
	var envelope apitypes.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &envelope); err != nil {
		t.Fatalf("error body is not the envelope: %v\n%s", err, rec.Body)
	}
	if envelope.Error.Code != code {
		t.Errorf("error code = %q, want %q (message %q)",
			envelope.Error.Code, code, envelope.Error.Message)
	}
	if envelope.Error.Message == "" {
		t.Error("error envelope has an empty message")
	}
}

func TestEvaluateValidDesign(t *testing.T) {
	s := New(Options{})
	rec := post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{Design: loadLakefield(t)})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	var resp apitypes.EvaluateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Design != "lakefield" {
		t.Errorf("design = %q", resp.Design)
	}
	if resp.Report == nil || resp.Report.Total.Kg() <= 0 {
		t.Fatalf("report missing or non-positive total: %+v", resp.Report)
	}
	if resp.Report.Embodied.Total.Kg() <= 0 || resp.Report.Operational.LifetimeCarbon.Kg() <= 0 {
		t.Error("embodied/operational breakdown missing")
	}
}

func TestEvaluateMalformedJSON(t *testing.T) {
	s := New(Options{})
	decodeError(t, post(t, s, "/v1/evaluate", `{"design": {`),
		http.StatusBadRequest, "bad_request")
}

func TestEvaluateUnknownField(t *testing.T) {
	s := New(Options{})
	decodeError(t, post(t, s, "/v1/evaluate", `{"desing": {}}`),
		http.StatusBadRequest, "bad_request")
}

func TestEvaluateMissingDesign(t *testing.T) {
	s := New(Options{})
	decodeError(t, post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{}),
		http.StatusBadRequest, "bad_request")
}

func TestEvaluateInvalidDesign(t *testing.T) {
	s := New(Options{})
	d := loadLakefield(t)
	d.Integration = "quantum-stack"
	decodeError(t, post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{Design: d}),
		http.StatusUnprocessableEntity, "invalid_design")
}

// An MCM split of an ORIN-class chip cannot carry the required bisection
// bandwidth (§3.4); with require_bandwidth_valid the service reports that
// as a structured error instead of a degraded report.
func TestEvaluateBandwidthInfeasible(t *testing.T) {
	s := New(Options{})
	d, err := split.Homogeneous(split.Chip{Name: "bw", ProcessNM: 7, Gates: 17e9}, "mcm")
	if err != nil {
		t.Fatal(err)
	}

	// Without the flag: a 200 whose report flags the violation.
	rec := post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{Design: d})
	if rec.Code != http.StatusOK {
		t.Fatalf("status = %d: %s", rec.Code, rec.Body)
	}
	var resp apitypes.EvaluateResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Report.Operational.Valid {
		t.Fatal("MCM split should violate the bandwidth constraint")
	}

	// With the flag: the structured error.
	rec = post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{
		Design: d, RequireBandwidthValid: true,
	})
	decodeError(t, rec, http.StatusUnprocessableEntity, "bandwidth_infeasible")
}

func TestMethodNotAllowed(t *testing.T) {
	s := New(Options{})
	rec := get(t, s, "/v1/evaluate")
	decodeError(t, rec, http.StatusMethodNotAllowed, "method_not_allowed")
	if allow := rec.Header().Get("Allow"); allow != http.MethodPost {
		t.Errorf("Allow = %q", allow)
	}
}

func TestNotFound(t *testing.T) {
	s := New(Options{})
	decodeError(t, get(t, s, "/v2/evaluate"), http.StatusNotFound, "not_found")
}

// The acceptance scenario: 100 copies of one design through the batch
// endpoint must answer byte-identically to a single evaluation, with a
// cache-hit rate over 0.9 visible in /v1/stats.
func TestBatchDuplicatesHitCache(t *testing.T) {
	s := New(Options{})
	single := post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{Design: loadLakefield(t)})
	if single.Code != http.StatusOK {
		t.Fatalf("single evaluate: %d: %s", single.Code, single.Body)
	}
	singleBody := bytes.TrimSuffix(single.Body.Bytes(), []byte("\n"))

	req := apitypes.BatchRequest{}
	for i := 0; i < 100; i++ {
		req.Designs = append(req.Designs, loadLakefield(t))
	}
	rec := post(t, s, "/v1/evaluate/batch", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d: %s", rec.Code, rec.Body)
	}
	var batch apitypes.BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Count != 100 || batch.Failed != 0 {
		t.Fatalf("count=%d failed=%d", batch.Count, batch.Failed)
	}
	for i, item := range batch.Results {
		if item.Index != i {
			t.Fatalf("results[%d] has index %d", i, item.Index)
		}
		if !bytes.Equal(item.Result, singleBody) {
			t.Fatalf("results[%d] differs from the single evaluation:\n%s\nvs\n%s",
				i, item.Result, singleBody)
		}
	}

	stats := get(t, s, "/v1/stats")
	if stats.Code != http.StatusOK {
		t.Fatalf("stats: %d", stats.Code)
	}
	var st apitypes.StatsResponse
	if err := json.Unmarshal(stats.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Engine.CacheHitRate <= 0.9 {
		t.Errorf("cache hit rate %.3f, want > 0.9 (hits=%d evals=%d)",
			st.Engine.CacheHitRate, st.Engine.CacheHits, st.Engine.Evaluations)
	}
	if st.DesignsEvaluated != 101 {
		t.Errorf("designs evaluated = %d, want 101", st.DesignsEvaluated)
	}
	if st.Engine.Evaluations != 1 {
		t.Errorf("distinct evaluations = %d, want 1", st.Engine.Evaluations)
	}
}

// Term factorization across requests: the same design evaluated under two
// use locations is two distinct evaluations but ONE embodied sub-term, and
// /v1/stats reports the embodied-cache counters.
func TestStatsReportEmbodiedCache(t *testing.T) {
	s := New(Options{})
	d1 := loadLakefield(t)
	d2 := loadLakefield(t)
	d2.UseLocation = "india"
	for _, d := range []*design.Design{d1, d2} {
		rec := post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{Design: d})
		if rec.Code != http.StatusOK {
			t.Fatalf("evaluate %s: %d: %s", d.UseLocation, rec.Code, rec.Body)
		}
	}
	rec := get(t, s, "/v1/stats")
	if rec.Code != http.StatusOK {
		t.Fatalf("stats: %d", rec.Code)
	}
	var st apitypes.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Engine.Evaluations != 2 {
		t.Errorf("evaluations = %d, want 2 (two use locations)", st.Engine.Evaluations)
	}
	if st.Engine.EmbodiedEvaluations != 1 {
		t.Errorf("embodied evaluations = %d, want 1 (shared term)", st.Engine.EmbodiedEvaluations)
	}
	if st.Engine.EmbodiedCacheHits != 1 {
		t.Errorf("embodied cache hits = %d, want 1", st.Engine.EmbodiedCacheHits)
	}
	if st.Engine.EmbodiedReuseRate != 0.5 {
		t.Errorf("embodied reuse rate = %v, want 0.5", st.Engine.EmbodiedReuseRate)
	}
	if st.Engine.EmbodiedEntries != 1 {
		t.Errorf("embodied entries = %d, want 1", st.Engine.EmbodiedEntries)
	}
}

// An oversized body is rejected before it is decoded into memory.
func TestBodySizeLimit(t *testing.T) {
	s := New(Options{MaxBodyBytes: 64})
	req := apitypes.BatchRequest{}
	for i := 0; i < 100; i++ {
		req.Designs = append(req.Designs, loadLakefield(t))
	}
	decodeError(t, post(t, s, "/v1/evaluate/batch", req),
		http.StatusRequestEntityTooLarge, "bad_request")
}

func TestBatchEmptyAndOversized(t *testing.T) {
	s := New(Options{MaxBatch: 2})
	decodeError(t, post(t, s, "/v1/evaluate/batch", apitypes.BatchRequest{}),
		http.StatusBadRequest, "bad_request")
	req := apitypes.BatchRequest{Designs: make([]*design.Design, 3)}
	decodeError(t, post(t, s, "/v1/evaluate/batch", req),
		http.StatusRequestEntityTooLarge, "bad_request")
}

// A batch mixing broken and valid designs reports per-item errors without
// failing the request.
func TestBatchPartialFailure(t *testing.T) {
	s := New(Options{})
	bad := loadLakefield(t)
	bad.Dies = nil
	req := apitypes.BatchRequest{Designs: []*design.Design{bad, loadLakefield(t), nil}}
	rec := post(t, s, "/v1/evaluate/batch", req)
	if rec.Code != http.StatusOK {
		t.Fatalf("batch: %d: %s", rec.Code, rec.Body)
	}
	var batch apitypes.BatchResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &batch); err != nil {
		t.Fatal(err)
	}
	if batch.Failed != 2 {
		t.Fatalf("failed = %d, want 2", batch.Failed)
	}
	if batch.Results[0].Error == nil || batch.Results[0].Error.Code != "invalid_design" {
		t.Errorf("results[0] error = %+v", batch.Results[0].Error)
	}
	if batch.Results[1].Error != nil || batch.Results[1].Result == nil {
		t.Errorf("results[1] should succeed: %+v", batch.Results[1].Error)
	}
	if batch.Results[2].Error == nil || batch.Results[2].Error.Code != "bad_request" {
		t.Errorf("results[2] error = %+v", batch.Results[2].Error)
	}
}

// A client that goes away mid-batch aborts the evaluation: the engine stops
// and the handler reports the cancellation.
func TestBatchCancelledContext(t *testing.T) {
	s := New(Options{})
	req := apitypes.BatchRequest{}
	for i := 0; i < 64; i++ {
		req.Designs = append(req.Designs, loadLakefield(t))
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	httpReq := httptest.NewRequest(http.MethodPost, "/v1/evaluate/batch", &buf).WithContext(ctx)
	rec := httptest.NewRecorder()
	s.ServeHTTP(rec, httpReq)
	decodeError(t, rec, statusClientClosedRequest, "cancelled")
}

// A request timeout surfaces as a structured timeout error, not a hang.
func TestRequestTimeout(t *testing.T) {
	s := New(Options{RequestTimeout: time.Nanosecond})
	req := apitypes.BatchRequest{}
	for i := 0; i < 256; i++ {
		d := loadLakefield(t)
		d.Dies[1].AreaMM2 = 82.5 + float64(i)/1e3 // distinct: no cache help
		req.Designs = append(req.Designs, d)
	}
	rec := post(t, s, "/v1/evaluate/batch", req)
	if rec.Code != http.StatusServiceUnavailable && rec.Code != statusClientClosedRequest {
		t.Fatalf("status = %d, want 503 or 499: %s", rec.Code, rec.Body)
	}
}

func TestMeta(t *testing.T) {
	s := New(Options{})
	rec := get(t, s, "/v1/meta")
	if rec.Code != http.StatusOK {
		t.Fatalf("meta: %d", rec.Code)
	}
	var meta apitypes.MetaResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &meta); err != nil {
		t.Fatal(err)
	}
	if len(meta.Integrations) != 8 {
		t.Errorf("integrations = %d, want 8", len(meta.Integrations))
	}
	if len(meta.Locations) != 17 {
		t.Errorf("locations = %d, want 17", len(meta.Locations))
	}
	if len(meta.NodesNM) == 0 || meta.NodesNM[0] != 3 {
		t.Errorf("nodes = %v", meta.NodesNM)
	}
	if meta.DefaultWorkload.PeakTOPS != apitypes.DefaultPeakTOPS {
		t.Errorf("default workload = %+v", meta.DefaultWorkload)
	}
	classes := map[string]int{}
	for _, integ := range meta.Integrations {
		classes[integ.Class]++
	}
	if classes["2d"] != 1 || classes["2.5d"] != 4 || classes["3d"] != 3 {
		t.Errorf("class split = %v", classes)
	}
}

func TestExploreStream(t *testing.T) {
	s := New(Options{StreamChunk: 4})
	rec := post(t, s, "/v1/explore", apitypes.ExploreRequest{
		Space: apitypes.SpaceSpec{
			Name:       "stream",
			Strategies: []string{"homogeneous", "heterogeneous"},
		},
		Top: 5,
	})
	if rec.Code != http.StatusOK {
		t.Fatalf("explore: %d: %s", rec.Code, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("Content-Type = %q", ct)
	}
	var results int
	var summary *apitypes.ExploreSummary
	scanner := bufio.NewScanner(rec.Body)
	for scanner.Scan() {
		var ev apitypes.ExploreEvent
		if err := json.Unmarshal(scanner.Bytes(), &ev); err != nil {
			t.Fatalf("bad NDJSON line %q: %v", scanner.Text(), err)
		}
		switch ev.Type {
		case "result":
			if summary != nil {
				t.Fatal("result event after the summary")
			}
			results++
		case "summary":
			summary = ev.Summary
		default:
			t.Fatalf("unexpected event type %q", ev.Type)
		}
	}
	if err := scanner.Err(); err != nil {
		t.Fatal(err)
	}
	// Two strategies over eight technologies: 8 + 7 (2D deduped).
	if results != 15 {
		t.Errorf("streamed %d results, want 15", results)
	}
	if summary == nil {
		t.Fatal("stream ended without a summary event")
	}
	if summary.Candidates != 15 || summary.Evaluated != 15 {
		t.Errorf("summary scale: %+v", summary)
	}
	if len(summary.Ranked) != 5 {
		t.Errorf("ranked = %v, want 5 IDs", summary.Ranked)
	}
	if len(summary.Frontier) == 0 {
		t.Error("empty frontier")
	}
	if summary.Stats.Evaluations == 0 {
		t.Error("summary is missing engine stats")
	}
}

func TestExploreBadSpace(t *testing.T) {
	s := New(Options{})
	decodeError(t, post(t, s, "/v1/explore", apitypes.ExploreRequest{
		Space: apitypes.SpaceSpec{Integrations: []string{"warp-core"}},
	}), http.StatusBadRequest, "bad_request")
}

func TestExploreSpaceTooLarge(t *testing.T) {
	s := New(Options{MaxSpace: 10})
	decodeError(t, post(t, s, "/v1/explore", apitypes.ExploreRequest{
		Space: apitypes.SpaceSpec{Strategies: []string{"homogeneous", "heterogeneous"}},
	}), http.StatusRequestEntityTooLarge, "bad_request")
}

// Every handled request shows up in the per-endpoint counters.
func TestStatsCounters(t *testing.T) {
	s := New(Options{})
	post(t, s, "/v1/evaluate", apitypes.EvaluateRequest{Design: loadLakefield(t)})
	post(t, s, "/v1/evaluate", `{"oops`)
	get(t, s, "/v1/meta")

	rec := get(t, s, "/v1/stats")
	var st apitypes.StatsResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	ep := st.Endpoints["/v1/evaluate"]
	if ep.Requests != 2 || ep.Errors != 1 {
		t.Errorf("/v1/evaluate counters = %+v", ep)
	}
	if st.Endpoints["/v1/meta"].Requests != 1 {
		t.Errorf("/v1/meta counters = %+v", st.Endpoints["/v1/meta"])
	}
	if ep.TotalMS < 0 {
		t.Errorf("negative latency %v", ep.TotalMS)
	}
	if st.MaxConcurrent <= 0 || st.CacheLimit != DefaultCacheLimit {
		t.Errorf("limits: %+v", st)
	}
}

func TestHealthz(t *testing.T) {
	s := New(Options{})
	rec := get(t, s, "/healthz")
	if rec.Code != http.StatusOK || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("healthz: %d %s", rec.Code, rec.Body)
	}
}

// ListenAndServe must come up, answer, and drain on context cancellation.
func TestListenAndServe(t *testing.T) {
	if testing.Short() {
		t.Skip("network listener in -short mode")
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Pick a free loopback port: bind :0, note the address, release it for
	// ListenAndServe. A tiny reuse race remains, but it cannot collide with
	// a fixed port another process holds.
	probe, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := probe.Addr().String()
	probe.Close()
	done := make(chan error, 1)
	go func() { done <- ListenAndServe(ctx, addr, Options{}) }()
	url := "http://" + addr + "/healthz"
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(url)
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("server did not come up: %v", err)
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("shutdown returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server did not shut down")
	}
}
