package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"testing"

	"repro/internal/design"
	"repro/internal/server/apitypes"
)

// benchDesigns builds n distinct ORIN-class designs (distinct die areas, so
// the memoization cache cannot collapse them).
func benchDesigns(b *testing.B, n int) []*design.Design {
	b.Helper()
	raw, err := os.ReadFile("../../designs/lakefield.json")
	if err != nil {
		b.Fatal(err)
	}
	out := make([]*design.Design, n)
	for i := range out {
		d, err := design.Unmarshal(raw)
		if err != nil {
			b.Fatal(err)
		}
		d.Dies[1].AreaMM2 = 82.5 + float64(i)*0.01
		out[i] = d
	}
	return out
}

// BenchmarkBatchThroughput measures end-to-end designs/sec through POST
// /v1/evaluate/batch — JSON decode, fan-out, evaluation and encode — with a
// cold cache per batch size. This is the number CI tracks in
// BENCH_serve.json.
func BenchmarkBatchThroughput(b *testing.B) {
	for _, size := range []int{1, 16, 128} {
		b.Run(fmtInt(size), func(b *testing.B) {
			designs := benchDesigns(b, size)
			body, err := json.Marshal(apitypes.BatchRequest{Designs: designs})
			if err != nil {
				b.Fatal(err)
			}
			s := New(Options{CacheLimit: -1})
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodPost, "/v1/evaluate/batch",
					bytes.NewReader(body))
				rec := httptest.NewRecorder()
				s.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					b.Fatalf("status %d: %s", rec.Code, rec.Body)
				}
			}
			b.StopTimer()
			elapsed := b.Elapsed()
			if elapsed > 0 {
				b.ReportMetric(float64(size*b.N)/elapsed.Seconds(), "designs/s")
			}
		})
	}
}

// BenchmarkBatchWarmCache is the duplicated-fleet case: every design after
// the first is a cache hit, so throughput approaches serialization cost.
func BenchmarkBatchWarmCache(b *testing.B) {
	designs := benchDesigns(b, 1)
	req := apitypes.BatchRequest{}
	for i := 0; i < 128; i++ {
		req.Designs = append(req.Designs, designs[0])
	}
	body, err := json.Marshal(req)
	if err != nil {
		b.Fatal(err)
	}
	s := New(Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		httpReq := httptest.NewRequest(http.MethodPost, "/v1/evaluate/batch",
			bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, httpReq)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

// BenchmarkEvaluateSingle is the single-request hot path.
func BenchmarkEvaluateSingle(b *testing.B) {
	designs := benchDesigns(b, 1)
	body, err := json.Marshal(apitypes.EvaluateRequest{Design: designs[0]})
	if err != nil {
		b.Fatal(err)
	}
	s := New(Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req := httptest.NewRequest(http.MethodPost, "/v1/evaluate", bytes.NewReader(body))
		rec := httptest.NewRecorder()
		s.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			b.Fatalf("status %d", rec.Code)
		}
	}
}

func fmtInt(n int) string { return "designs=" + itoa(n) }
