// Package server exposes the full 3D-Carbon model as a long-running HTTP
// service — carbon modeling as infrastructure rather than a one-shot CLI.
//
// Endpoints (all JSON, wire types in internal/server/apitypes):
//
//	POST /v1/evaluate        one design → full life-cycle report
//	POST /v1/evaluate/batch  many designs → per-design reports, fanned out
//	                         across the worker pool with one process-wide
//	                         memoization cache
//	POST /v1/explore         a space spec → NDJSON result stream + summary
//	POST /v1/optimize        a space spec → lowest-carbon candidate via the
//	                         branch-and-bound optimizer, without enumeration
//	GET  /v1/meta            enumerable inputs (integrations, locations, …)
//	GET  /v1/stats           request / latency / cache-hit counters
//	GET  /healthz            liveness probe
//
// The server reuses one explore.Engine for every request, so evaluations
// memoize across requests: a design evaluated once — alone, in a batch or
// inside an exploration — is answered from cache forever after (bounded by
// an LRU limit). A semaphore caps concurrently-evaluating requests and each
// request runs under a configurable timeout.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/explore"
	"repro/internal/ic"
	"repro/internal/jobs"
	"repro/internal/params"
	"repro/internal/server/apitypes"
	"repro/internal/split"
)

// Defaults for the zero Options.
const (
	// DefaultCacheLimit bounds the process-wide memoization cache. A cached
	// evaluation is a few kB of reports, so the default is tens of MB at
	// worst.
	DefaultCacheLimit = 1 << 16
	// DefaultRequestTimeout bounds one evaluation request end to end.
	DefaultRequestTimeout = 60 * time.Second
	// DefaultMaxBatch bounds the designs of one batch request.
	DefaultMaxBatch = 10_000
	// DefaultMaxSpace bounds the candidates one exploration may enumerate.
	DefaultMaxSpace = 1_000_000
	// DefaultStreamChunk is the number of candidates evaluated between
	// NDJSON flushes of /v1/explore.
	DefaultStreamChunk = 64
	// DefaultMaxBodyBytes bounds one request body; a 10k-design batch is
	// ~10 MB, so 64 MB leaves headroom without letting one request defeat
	// the memory bounds.
	DefaultMaxBodyBytes = 64 << 20
	// DefaultMaxProfiles bounds the per-profile model cache behind inline
	// params overlays. A resolved profile is a full model (databases +
	// engine) of a few hundred kB; requests beyond the bound rebuild the
	// least recently used profile.
	DefaultMaxProfiles = 8
	// DefaultMaxOptimizeDesigns bounds the distinct embodied designs one
	// /v1/optimize space may span (gates × nodes × fabs × pairs — the
	// compiled plan's memory footprint). The candidate count itself is
	// unbounded: the operational axes multiply it for free.
	DefaultMaxOptimizeDesigns = 250_000
	// DefaultMaxOptimizeBudget caps (and, for requests that omit a budget,
	// sets) the charged model work of one /v1/optimize run — candidate
	// evaluations plus embodied bound probes.
	DefaultMaxOptimizeBudget = 5_000_000
)

// Options configures the service. The zero value serves the default model
// with bounded cache, per-CPU workers and a 60 s request timeout.
type Options struct {
	// Model is the configured pipeline; nil means a model built from
	// BaselineParams (or core.Default() when that is nil too).
	Model *core.Model
	// BaselineParams is the ParameterSet every request without an inline
	// overlay evaluates under, and the base inline overlays merge into;
	// nil means params.Default(). It must be a validated set (as returned
	// by params.Load/Overlay); New panics on an invalid baseline.
	BaselineParams *params.Set
	// MaxProfiles bounds the per-profile model cache for inline params
	// overlays; 0 means DefaultMaxProfiles, negative means unbounded.
	MaxProfiles int
	// Workers bounds the evaluation concurrency of one request;
	// ≤0 means runtime.NumCPU().
	Workers int
	// CacheLimit bounds the shared memoization cache (distinct evaluations
	// kept, LRU-evicted); 0 means DefaultCacheLimit, negative means
	// unbounded.
	CacheLimit int
	// MaxConcurrent caps requests evaluating at once (excess requests
	// queue); ≤0 means 2×NumCPU.
	MaxConcurrent int
	// RequestTimeout bounds one request's evaluation; 0 means
	// DefaultRequestTimeout, negative means none.
	RequestTimeout time.Duration
	// MaxBatch bounds the designs of one batch request; ≤0 means
	// DefaultMaxBatch.
	MaxBatch int
	// MaxSpace bounds the candidates one exploration may enumerate;
	// ≤0 means DefaultMaxSpace.
	MaxSpace int
	// StreamChunk is the evaluation block size between NDJSON flushes;
	// ≤0 means DefaultStreamChunk.
	StreamChunk int
	// MaxOptimizeDesigns bounds the distinct embodied designs one
	// /v1/optimize space may span; ≤0 means DefaultMaxOptimizeDesigns.
	MaxOptimizeDesigns int
	// MaxOptimizeBudget caps the charged work of one /v1/optimize run and
	// substitutes for an omitted request budget; ≤0 means
	// DefaultMaxOptimizeBudget.
	MaxOptimizeBudget int
	// MaxBodyBytes bounds one request body; 0 means DefaultMaxBodyBytes,
	// negative means unbounded.
	MaxBodyBytes int64
	// Logger receives one line per request (method, path, status, time);
	// nil disables request logging.
	Logger *log.Logger
	// EnableProfiling mounts net/http/pprof at /debug/pprof/ (CPU and heap
	// profiles of the live service). Off by default: the profile endpoints
	// expose internals and hold write locks, so they are opt-in and should
	// stay unreachable from untrusted networks.
	EnableProfiling bool

	// JobStore persists the async job tier (/v1/jobs); nil means in-memory
	// (jobs do not survive restarts). Pass jobs.OpenFileStore for a
	// crash-recoverable log.
	JobStore jobs.Store
	// MaxRunningJobs caps concurrently executing jobs; ≤0 means the jobs
	// package default.
	MaxRunningJobs int
	// JobCheckpointEvery is the candidates evaluated between durable job
	// checkpoints; ≤0 means the jobs package default.
	JobCheckpointEvery int
	// MaxJobSpace bounds the candidates one job may evaluate; ≤0 means the
	// jobs package default.
	MaxJobSpace int
	// JobShards splits large jobs into this many concurrent index-range
	// shard sub-runs (≤1 disables); JobShardAbove is the minimum candidate
	// count before a job shards (≤0 means the jobs package default).
	JobShards     int
	JobShardAbove int
	// JobRatePerSec/JobBurst rate-limit job submissions per tenant
	// (token bucket); 0 disables rate limiting.
	JobRatePerSec float64
	JobBurst      int
	// MaxActiveJobsPerTenant caps one tenant's queued+running jobs;
	// 0 means unlimited.
	MaxActiveJobsPerTenant int
	// JobShedHighWater/JobShedLowWater bound the load-shedding hysteresis:
	// running jobs are parked (checkpointed and re-queued) while the
	// interactive tier's slot usage stays at or above the high water, and
	// resume once it falls to the low water. 0 means the jobs defaults.
	JobShedHighWater float64
	JobShedLowWater  float64
	// DrainTimeout bounds graceful shutdown: the window for in-flight
	// requests to finish and running jobs to reach a checkpoint; 0 means
	// DefaultDrainTimeout.
	DrainTimeout time.Duration

	// Replicas are worker base URLs the job tier may dispatch shard
	// chunks to (POST /v1/shards/run). Empty means every chunk runs
	// in-process; more replicas join at runtime via POST /v1/replicas.
	Replicas []string
	// ShardLease bounds one dispatched chunk: a replica that has not
	// answered within the lease loses the chunk to reassignment (and its
	// late completion is discarded); ≤0 means the dist package default.
	ShardLease time.Duration
	// ReplicaHeartbeatTimeout is how long a runtime-registered replica
	// may stay silent before it stops receiving chunks; ≤0 means the
	// dist package default.
	ReplicaHeartbeatTimeout time.Duration
}

// DefaultDrainTimeout bounds graceful shutdown when Options.DrainTimeout
// is zero.
const DefaultDrainTimeout = 10 * time.Second

func (o Options) drainTimeout() time.Duration {
	if o.DrainTimeout > 0 {
		return o.DrainTimeout
	}
	return DefaultDrainTimeout
}

func (o Options) cacheLimit() int {
	switch {
	case o.CacheLimit == 0:
		return DefaultCacheLimit
	case o.CacheLimit < 0:
		return 0 // unbounded engine cache
	}
	return o.CacheLimit
}

func (o Options) maxConcurrent() int {
	if o.MaxConcurrent > 0 {
		return o.MaxConcurrent
	}
	return 2 * runtime.NumCPU()
}

func (o Options) timeout() time.Duration {
	switch {
	case o.RequestTimeout == 0:
		return DefaultRequestTimeout
	case o.RequestTimeout < 0:
		return 0
	}
	return o.RequestTimeout
}

func (o Options) maxBatch() int {
	if o.MaxBatch > 0 {
		return o.MaxBatch
	}
	return DefaultMaxBatch
}

func (o Options) maxSpace() int {
	if o.MaxSpace > 0 {
		return o.MaxSpace
	}
	return DefaultMaxSpace
}

func (o Options) streamChunk() int {
	if o.StreamChunk > 0 {
		return o.StreamChunk
	}
	return DefaultStreamChunk
}

func (o Options) maxOptimizeDesigns() int {
	if o.MaxOptimizeDesigns > 0 {
		return o.MaxOptimizeDesigns
	}
	return DefaultMaxOptimizeDesigns
}

func (o Options) maxOptimizeBudget() int {
	if o.MaxOptimizeBudget > 0 {
		return o.MaxOptimizeBudget
	}
	return DefaultMaxOptimizeBudget
}

func (o Options) maxProfiles() int {
	switch {
	case o.MaxProfiles == 0:
		return DefaultMaxProfiles
	case o.MaxProfiles < 0:
		return 0 // unbounded
	}
	return o.MaxProfiles
}

func (o Options) maxBodyBytes() int64 {
	switch {
	case o.MaxBodyBytes == 0:
		return DefaultMaxBodyBytes
	case o.MaxBodyBytes < 0:
		return 0
	}
	return o.MaxBodyBytes
}

// Server is the HTTP service. Construct with New; it implements
// http.Handler and is safe for concurrent use.
type Server struct {
	opts   Options
	engine *explore.Engine
	sem    chan struct{}
	mux    *http.ServeMux
	start  time.Time

	// baseSet/baseFP/baseModel are the baseline parameter provenance;
	// shared is the one memoization cache every profile engine attaches
	// to, and profiles the bounded overlay → engine LRU.
	baseSet   *params.Set
	baseFP    params.Fingerprint
	baseModel *core.Model
	shared    *explore.SharedCache
	profiles  *profileCache

	// jobsSvc is the async job tier; jobsErr records a boot failure
	// (store replay), in which case the /v1/jobs endpoints serve 503.
	// draining flips /readyz to 503 while shutdown drains.
	jobsSvc  *jobs.Service
	jobsErr  error
	draining atomic.Bool

	// pool is the replica fleet shard chunks dispatch to (empty pool =
	// every chunk runs locally); shardRuns/shardCands count the chunks
	// this process served as a replica for some other coordinator.
	pool       *dist.Pool
	shardRuns  atomic.Uint64
	shardCands atomic.Uint64

	inFlight  atomic.Int64
	evaluated atomic.Uint64
	metrics   map[string]*endpointMetrics

	// Optimizer counters behind /v1/stats, aggregated over /v1/optimize.
	optRuns     atomic.Uint64
	optComplete atomic.Uint64
	optEvals    atomic.Uint64
	optProbes   atomic.Uint64
	optPrunes   atomic.Uint64
}

// endpointMetrics are the per-endpoint counters behind /v1/stats.
type endpointMetrics struct {
	requests atomic.Uint64
	errors   atomic.Uint64
	totalNS  atomic.Int64
}

// New returns a ready-to-serve handler over one shared engine. The
// baseline model comes from Options.Model, else Options.BaselineParams,
// else the paper-calibrated default; New panics on an invalid
// BaselineParams (a *Set obtained from params.Load/Overlay is always
// valid).
func New(opts Options) *Server {
	baseSet := opts.BaselineParams
	if baseSet == nil {
		baseSet = params.Default()
	}
	m := opts.Model
	if m == nil {
		var err error
		m, err = core.New(baseSet)
		if err != nil {
			panic(fmt.Sprintf("server: invalid baseline params: %v", err))
		}
	} else if m.Params() != nil && opts.BaselineParams == nil {
		// A model built from its own set: overlays merge into that set.
		baseSet = m.Params()
	}
	baseFP, err := baseSet.Fingerprint()
	if err != nil {
		panic(fmt.Sprintf("server: baseline fingerprint: %v", err))
	}
	shared := explore.NewSharedCache(opts.cacheLimit(), 0)
	e := explore.New(m)
	e.Workers = opts.Workers
	e.Cache = shared

	s := &Server{
		opts:      opts,
		engine:    e,
		sem:       make(chan struct{}, opts.maxConcurrent()),
		mux:       http.NewServeMux(),
		start:     time.Now(),
		baseSet:   baseSet,
		baseFP:    baseFP,
		baseModel: m,
		shared:    shared,
		profiles:  newProfileCache(opts.maxProfiles()),
		metrics:   make(map[string]*endpointMetrics),
	}
	s.mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		writeError(w, http.StatusNotFound, "not_found",
			fmt.Sprintf("no such endpoint %q (see docs/API.md)", r.URL.Path))
	})
	s.route("/v1/evaluate", http.MethodPost, s.handleEvaluate)
	s.route("/v1/evaluate/batch", http.MethodPost, s.handleBatch)
	s.route("/v1/explore", http.MethodPost, s.handleExplore)
	s.route("/v1/optimize", http.MethodPost, s.handleOptimize)
	s.route("/v1/meta", http.MethodGet, s.handleMeta)
	s.route("/v1/stats", http.MethodGet, s.handleStats)
	s.route("/healthz", http.MethodGet, s.handleHealth)
	s.route("/readyz", http.MethodGet, s.handleReady)
	// The distributed shard tier: the pool always exists (an empty pool
	// declines dispatch instantly and the job tier runs purely local),
	// so replicas can join a running coordinator at any time.
	s.pool = dist.NewPool(dist.Options{
		Replicas:         opts.Replicas,
		Lease:            opts.ShardLease,
		HeartbeatTimeout: opts.ReplicaHeartbeatTimeout,
		BaselineFP:       baseFP.String(),
		Logger:           opts.Logger,
	})
	s.route("/v1/shards/run", http.MethodPost, s.handleShardRun)
	s.routeAny("/v1/replicas", s.handleReplicas)
	// The job tier dispatches methods itself: the collection takes POST
	// and GET, the item GET and DELETE plus the /events sub-resource.
	s.routeAny("/v1/jobs", s.handleJobs)
	s.routeAny("/v1/jobs/", s.handleJob)
	if s.jobsSvc, s.jobsErr = s.newJobService(); s.jobsErr != nil && opts.Logger != nil {
		opts.Logger.Printf("jobs: tier unavailable: %v", s.jobsErr)
	}
	if opts.EnableProfiling {
		// Mounted on the server's own mux (not http.DefaultServeMux) and
		// outside route(): profile requests are long-polls that would
		// distort the latency metrics.
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// Engine exposes the shared evaluator (stats, cache configuration).
func (s *Server) Engine() *explore.Engine { return s.engine }

// Pool exposes the replica dispatch pool (cmd/serve wiring, tests).
func (s *Server) Pool() *dist.Pool { return s.pool }

func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// handlerFunc returns the response status for metrics.
type handlerFunc func(w http.ResponseWriter, r *http.Request) int

// route registers a method-checked, metered handler.
func (s *Server) route(path, method string, h handlerFunc) {
	s.routeAny(path, func(w http.ResponseWriter, r *http.Request) int {
		if r.Method != method {
			w.Header().Set("Allow", method)
			return writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
				fmt.Sprintf("%s requires %s", path, method))
		}
		return h(w, r)
	})
}

// routeAny registers a metered handler that dispatches methods itself.
func (s *Server) routeAny(path string, h handlerFunc) {
	em := &endpointMetrics{}
	s.metrics[path] = em
	s.mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		status := h(w, r)
		em.requests.Add(1)
		if status >= 400 {
			em.errors.Add(1)
		}
		em.totalNS.Add(int64(time.Since(start)))
		if s.opts.Logger != nil {
			s.opts.Logger.Printf("%s %s %d %s", r.Method, r.URL.Path, status,
				time.Since(start).Round(time.Microsecond))
		}
	})
}

// writeError emits the structured error envelope and returns the status.
func writeError(w http.ResponseWriter, status int, code, msg string) int {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(apitypes.ErrorResponse{
		Error: apitypes.Error{Code: code, Message: msg},
	})
	return status
}

// writeJSON emits a 200 with the compact JSON encoding of v.
func writeJSON(w http.ResponseWriter, v any) int {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
	return http.StatusOK
}

// statusClientClosedRequest mirrors nginx's 499: the client went away
// before the evaluation finished.
const statusClientClosedRequest = 499

// errSaturated marks a request rejected because every evaluation slot is
// taken. It renders as 429 + Retry-After, never as a timeout: queuing a
// request behind a full semaphore until its deadline expired used to
// misreport saturation as "evaluation exceeded the server's request
// timeout", hiding the real condition from clients and dashboards.
var errSaturated = errors.New("server: all evaluation slots busy")

// acquire takes an evaluation slot, failing fast with errSaturated when
// none is free (an already-expired context takes precedence). The
// returned release must be called iff err is nil.
func (s *Server) acquire(ctx context.Context) (release func(), err error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	select {
	case s.sem <- struct{}{}:
		s.inFlight.Add(1)
		return func() {
			s.inFlight.Add(-1)
			<-s.sem
		}, nil
	default:
		return nil, errSaturated
	}
}

// acquireStatus renders an acquire failure: 429 + Retry-After for
// saturation, the usual cancellation mapping otherwise.
func acquireStatus(w http.ResponseWriter, err error) int {
	if errors.Is(err, errSaturated) {
		w.Header().Set("Retry-After", "1")
		return writeError(w, http.StatusTooManyRequests, "saturated",
			"all evaluation slots are busy; retry shortly")
	}
	return cancelStatus(w, err)
}

// requestContext applies the configured evaluation timeout.
func (s *Server) requestContext(r *http.Request) (context.Context, context.CancelFunc) {
	if t := s.opts.timeout(); t > 0 {
		return context.WithTimeout(r.Context(), t)
	}
	return context.WithCancel(r.Context())
}

// decode strictly parses a JSON request body, bounded by MaxBodyBytes so
// an oversized POST is rejected instead of decoded into memory (the
// MaxBatch/MaxSpace checks run only after decoding).
func (s *Server) decode(w http.ResponseWriter, r *http.Request, v any) error {
	body := r.Body
	if limit := s.opts.maxBodyBytes(); limit > 0 {
		body = http.MaxBytesReader(w, r.Body, limit)
	}
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	// A design document POSTed raw (without the request wrapper) is the
	// most likely trailing-garbage case; reject everything after the first
	// value so errors surface instead of silently ignoring input.
	if dec.More() {
		return errors.New("request body holds more than one JSON value")
	}
	return nil
}

// decodeStatus renders a body-decoding failure: 413 for an over-limit
// body, 400 for everything else.
func decodeStatus(w http.ResponseWriter, err error) int {
	var tooLarge *http.MaxBytesError
	if errors.As(err, &tooLarge) {
		return writeError(w, http.StatusRequestEntityTooLarge, "bad_request",
			fmt.Sprintf("request body exceeds the server limit of %d bytes", tooLarge.Limit))
	}
	return writeError(w, http.StatusBadRequest, "bad_request",
		"malformed request body: "+err.Error())
}

// cancelStatus maps a context error to its HTTP rendering.
func cancelStatus(w http.ResponseWriter, err error) int {
	if errors.Is(err, context.DeadlineExceeded) {
		return writeError(w, http.StatusServiceUnavailable, "timeout",
			"evaluation exceeded the server's request timeout")
	}
	return writeError(w, statusClientClosedRequest, "cancelled",
		"client cancelled the request")
}

// evaluateDesign runs one request through the shared engine and renders the
// response bytes every evaluation path shares (single and batch items), so
// identical designs produce byte-identical reports everywhere.
func (s *Server) evaluateDesign(ctx context.Context, eng *explore.Engine, req apitypes.EvaluateRequest) (json.RawMessage, *apitypes.Error, error) {
	if req.Design == nil {
		return nil, &apitypes.Error{Code: "bad_request",
			Message: `request is missing the "design" object`}, nil
	}
	if err := eng.Model.ValidateDesign(req.Design); err != nil {
		return nil, &apitypes.Error{Code: "invalid_design", Message: err.Error()}, nil
	}
	w, eff := req.Workload.Resolve()
	results, err := eng.Evaluate(ctx, []explore.Candidate{{
		ID:       req.Design.Name,
		Design:   req.Design,
		Workload: w,
		Eff:      eff,
	}})
	if err != nil {
		return nil, nil, err // context cancellation
	}
	s.evaluated.Add(1)
	res := results[0]
	if res.Err != nil {
		return nil, &apitypes.Error{Code: "evaluation_failed", Message: res.Err.Error()}, nil
	}
	if req.RequireBandwidthValid && res.Report.Operational != nil && !res.Report.Operational.Valid {
		return nil, &apitypes.Error{
			Code: "bandwidth_infeasible",
			Message: fmt.Sprintf(
				"design %q fails the §3.4 bandwidth constraint: capacity %.1f GB/s < required %.1f GB/s",
				req.Design.Name,
				res.Report.Operational.Capacity.GBytesPerS(),
				res.Report.Operational.Required.GBytesPerS()),
		}, nil
	}
	body, err := json.Marshal(apitypes.EvaluateResponse{
		Design: req.Design.Name,
		Report: res.Report,
	})
	if err != nil {
		return nil, nil, err
	}
	return body, nil, nil
}

// errStatus maps a structured evaluation error to its HTTP status.
func errStatus(e *apitypes.Error) int {
	switch e.Code {
	case "bad_request", "invalid_params":
		return http.StatusBadRequest
	default:
		// invalid_design / evaluation_failed / bandwidth_infeasible: the
		// request parsed but the model rejects it.
		return http.StatusUnprocessableEntity
	}
}

func (s *Server) handleEvaluate(w http.ResponseWriter, r *http.Request) int {
	var req apitypes.EvaluateRequest
	if err := s.decode(w, r, &req); err != nil {
		return decodeStatus(w, err)
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return acquireStatus(w, err)
	}
	defer release()
	// Resolved under the evaluation slot: the overlay merge and model
	// construction are CPU work the concurrency limiter must bound.
	eng, apiErr := s.resolveEngine(req.Params)
	if apiErr != nil {
		return writeError(w, errStatus(apiErr), apiErr.Code, apiErr.Message)
	}

	body, apiErr, err := s.evaluateDesign(ctx, eng, req)
	if err != nil {
		return cancelStatus(w, err)
	}
	if apiErr != nil {
		return writeError(w, errStatus(apiErr), apiErr.Code, apiErr.Message)
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(body, '\n'))
	return http.StatusOK
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) int {
	var req apitypes.BatchRequest
	if err := s.decode(w, r, &req); err != nil {
		return decodeStatus(w, err)
	}
	if len(req.Designs) == 0 {
		return writeError(w, http.StatusBadRequest, "bad_request",
			`request is missing the "designs" array`)
	}
	if max := s.opts.maxBatch(); len(req.Designs) > max {
		return writeError(w, http.StatusRequestEntityTooLarge, "bad_request",
			fmt.Sprintf("batch of %d designs exceeds the server limit of %d", len(req.Designs), max))
	}
	ctx, cancel := s.requestContext(r)
	defer cancel()
	release, err := s.acquire(ctx)
	if err != nil {
		return acquireStatus(w, err)
	}
	defer release()
	eng, apiErr := s.resolveEngine(req.Params)
	if apiErr != nil {
		return writeError(w, errStatus(apiErr), apiErr.Code, apiErr.Message)
	}

	// Validate up front so index errors are reported even when the rest of
	// the batch evaluates, then fan the valid designs out in one Evaluate
	// call — the engine's worker pool and shared cache do the heavy lifting.
	wl, eff := req.Workload.Resolve()
	items := make([]apitypes.BatchItem, len(req.Designs))
	cands := make([]explore.Candidate, 0, len(req.Designs))
	candIdx := make([]int, 0, len(req.Designs))
	for i, d := range req.Designs {
		items[i].Index = i
		if d == nil {
			items[i].Error = &apitypes.Error{Code: "bad_request",
				Message: fmt.Sprintf("designs[%d] is null", i)}
			continue
		}
		if err := eng.Model.ValidateDesign(d); err != nil {
			items[i].Error = &apitypes.Error{Code: "invalid_design", Message: err.Error()}
			continue
		}
		cands = append(cands, explore.Candidate{
			ID: d.Name, Design: d, Workload: wl, Eff: eff,
		})
		candIdx = append(candIdx, i)
	}
	results, err := eng.Evaluate(ctx, cands)
	if err != nil {
		return cancelStatus(w, err)
	}
	failed := 0
	for j, res := range results {
		i := candIdx[j]
		s.evaluated.Add(1)
		switch {
		case res.Err != nil:
			items[i].Error = &apitypes.Error{Code: "evaluation_failed", Message: res.Err.Error()}
		case req.RequireBandwidthValid && res.Report.Operational != nil && !res.Report.Operational.Valid:
			items[i].Error = &apitypes.Error{Code: "bandwidth_infeasible",
				Message: fmt.Sprintf("design %q fails the §3.4 bandwidth constraint", res.Candidate.ID)}
		default:
			body, err := json.Marshal(apitypes.EvaluateResponse{
				Design: res.Candidate.ID, Report: res.Report,
			})
			if err != nil {
				items[i].Error = &apitypes.Error{Code: "internal", Message: err.Error()}
				break
			}
			items[i].Result = body
		}
	}
	for _, it := range items {
		if it.Error != nil {
			failed++
		}
	}
	return writeJSON(w, apitypes.BatchResponse{
		Count:   len(items),
		Failed:  failed,
		Results: items,
	})
}

func (s *Server) handleMeta(w http.ResponseWriter, _ *http.Request) int {
	gridDB, techDB := s.baseModel.GridDB(), s.baseModel.TechDB()
	meta := apitypes.MetaResponse{
		NodesNM:           techDB.Processes(),
		ParamsVersion:     s.baseSet.Version,
		ParamsFingerprint: s.baseFP.String(),
		Strategies: []string{
			string(split.HomogeneousStrategy), string(split.HeterogeneousStrategy),
		},
		Stackings: []string{string(ic.F2F), string(ic.F2B)},
		Flows:     []string{string(ic.D2W), string(ic.W2W)},
		Orders:    []string{string(ic.ChipFirst), string(ic.ChipLast)},
		DefaultWorkload: apitypes.WorkloadSpec{
			TOPS:               apitypes.DefaultTOPS,
			PeakTOPS:           apitypes.DefaultPeakTOPS,
			EfficiencyTOPSW:    apitypes.DefaultEfficiencyTOPSW,
			ActiveHoursPerYear: apitypes.DefaultActiveHours,
			LifetimeYears:      apitypes.DefaultLifetimeYears,
		},
	}
	for _, integ := range ic.Integrations() {
		class := "2d"
		switch {
		case integ.Is3D():
			class = "3d"
		case integ.Is25D():
			class = "2.5d"
		}
		meta.Integrations = append(meta.Integrations, apitypes.IntegrationInfo{
			ID: string(integ), Display: integ.DisplayName(), Class: class,
		})
	}
	for _, loc := range gridDB.Locations() {
		ci, err := gridDB.Intensity(loc)
		if err != nil {
			continue // unreachable: Locations lists the database keys
		}
		meta.Locations = append(meta.Locations, apitypes.LocationInfo{
			ID: string(loc), IntensityGPerKWh: ci.GPerKWh(),
		})
	}
	return writeJSON(w, meta)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) int {
	// Engine counters aggregate the baseline engine and every profile
	// engine (resident or evicted): all requests share one memoization
	// cache, so the documented "across all requests since boot" semantics
	// must include profile traffic. Entry/shard figures come from the
	// shared cache itself (the embodied side included).
	engineStats := s.engine.Stats()
	accumulateEngine(&engineStats, s.profiles.engineTotals())
	engineStats.CacheEntries = s.shared.Entries()
	engineStats.CacheShards = s.shared.Shards()
	engineStats.EmbodiedCacheEntries = s.shared.EmbodiedEntries()
	resp := apitypes.StatsResponse{
		UptimeSeconds:    time.Since(s.start).Seconds(),
		Endpoints:        make(map[string]apitypes.EndpointStats, len(s.metrics)),
		DesignsEvaluated: s.evaluated.Load(),
		InFlight:         s.inFlight.Load(),
		MaxConcurrent:    s.opts.maxConcurrent(),
		CacheLimit:       s.opts.cacheLimit(),
		Engine:           apitypes.NewEngineStats(engineStats),
		Profiles:         s.profiles.stats(),
		Optimize: apitypes.OptimizeCounters{
			Runs:        s.optRuns.Load(),
			Complete:    s.optComplete.Load(),
			Evaluations: s.optEvals.Load(),
			BoundProbes: s.optProbes.Load(),
			Prunes:      s.optPrunes.Load(),
		},
	}
	if s.jobsSvc != nil {
		c := s.jobsSvc.Counters()
		resp.Jobs = &apitypes.JobsCounters{
			Submitted: c.Submitted,
			Done:      c.Done,
			Failed:    c.Failed,
			Cancelled: c.Cancelled,
			Shed:      c.Shed,
			Rejected:  c.Rejected,
			Running:   c.Running,
			Queued:    c.Queued,
		}
	}
	pc := s.pool.Counters()
	resp.Dist = &apitypes.DistCounters{
		Replicas:         pc.Replicas,
		Healthy:          pc.Healthy,
		Dispatched:       pc.Dispatched,
		Completed:        pc.Completed,
		Retries:          pc.Retries,
		Reassignments:    pc.Reassignments,
		LeaseExpiries:    pc.LeaseExpiries,
		StaleDropped:     pc.StaleDropped,
		BreakerOpened:    pc.BreakerOpened,
		LocalFallbacks:   pc.LocalFallbacks,
		ShardRunsServed:  s.shardRuns.Load(),
		CandidatesServed: s.shardCands.Load(),
	}
	for path, em := range s.metrics {
		st := apitypes.EndpointStats{
			Requests: em.requests.Load(),
			Errors:   em.errors.Load(),
			TotalMS:  float64(em.totalNS.Load()) / 1e6,
		}
		if st.Requests > 0 {
			st.AvgMS = st.TotalMS / float64(st.Requests)
		}
		resp.Endpoints[path] = st
	}
	return writeJSON(w, resp)
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) int {
	return writeJSON(w, map[string]string{"status": "ok"})
}

// handleReady is the readiness probe: 503 once draining starts, so load
// balancers stop routing new work while /healthz keeps reporting the
// process alive for the whole drain window.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) int {
	if s.draining.Load() {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		_ = json.NewEncoder(w).Encode(map[string]string{"status": "draining"})
		return http.StatusServiceUnavailable
	}
	return writeJSON(w, map[string]string{"status": "ready"})
}

// BeginDrain flips /readyz to 503 and stops admitting new jobs. Call it
// when shutdown starts, before http.Server.Shutdown, so the load
// balancer sees the instance leave while in-flight work still finishes.
func (s *Server) BeginDrain() {
	s.draining.Store(true)
	if s.jobsSvc != nil {
		s.jobsSvc.BeginDrain()
	}
}

// Shutdown checkpoints and parks every running job and closes the job
// store; parked jobs resume from their checkpoints on the next boot.
// HTTP draining is the owner's concern (http.Server.Shutdown).
func (s *Server) Shutdown(ctx context.Context) error {
	s.BeginDrain()
	if s.jobsSvc == nil {
		return nil
	}
	return s.jobsSvc.Shutdown(ctx)
}

// ListenAndServe runs the service on addr until ctx is cancelled, then
// shuts down gracefully: /readyz flips to 503, in-flight requests drain
// under the drain timeout, and running jobs are parked at a checkpoint
// so a restart over the same job store resumes them without losing work.
func ListenAndServe(ctx context.Context, addr string, opts Options) error {
	// Note: ctx is deliberately NOT the BaseContext — cancelling it must
	// stop accepting and *drain* in-flight evaluations, not abort them;
	// Shutdown's grace window below does the draining.
	h := New(opts)
	if err := h.JobsErr(); err != nil && opts.JobStore != nil {
		// An explicitly configured durable store that fails to replay is a
		// boot failure: starting anyway would silently orphan every
		// checkpointed job.
		return fmt.Errorf("job store replay: %w", err)
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: 10 * time.Second,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		h.BeginDrain()
		shutCtx, cancel := context.WithTimeout(context.Background(), opts.drainTimeout())
		defer cancel()
		err := srv.Shutdown(shutCtx)
		// Jobs park after the HTTP side quiesces: every running job
		// checkpoints and the store closes cleanly.
		if jerr := h.Shutdown(shutCtx); err == nil {
			err = jerr
		}
		return err
	}
}
