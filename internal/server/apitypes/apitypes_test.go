package apitypes

import (
	"context"
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/explore"
)

func TestWorkloadSpecDefaults(t *testing.T) {
	var nilSpec *WorkloadSpec
	w, eff := nilSpec.Resolve()
	if w.Throughput.TOPS() != DefaultTOPS || w.PeakThroughput.TOPS() != DefaultPeakTOPS {
		t.Errorf("nil spec throughput: %+v", w)
	}
	if w.ActiveHoursPerYear != DefaultActiveHours || w.LifetimeYears != DefaultLifetimeYears {
		t.Errorf("nil spec profile: %+v", w)
	}
	if math.Abs(eff.TOPSPerW()-DefaultEfficiencyTOPSW) > 1e-12 {
		t.Errorf("nil spec efficiency: %v", eff)
	}
	if err := w.Validate(); err != nil {
		t.Errorf("default workload invalid: %v", err)
	}

	w, eff = (&WorkloadSpec{TOPS: 10, PeakTOPS: 100, EfficiencyTOPSW: 5,
		ActiveHoursPerYear: 1000, LifetimeYears: 3}).Resolve()
	if w.Throughput.TOPS() != 10 || w.PeakThroughput.TOPS() != 100 ||
		w.ActiveHoursPerYear != 1000 || w.LifetimeYears != 3 || eff.TOPSPerW() != 5 {
		t.Errorf("explicit spec not honoured: %+v eff=%v", w, eff)
	}
}

func TestSpaceSpecValidation(t *testing.T) {
	good := SpaceSpec{
		Integrations: []string{"2D", "hybrid-3d"},
		Strategies:   []string{"homogeneous"},
		FabLocations: []string{"taiwan"},
		UseLocations: []string{"usa", "norway"},
		NodesNM:      []int{5, 7},
	}
	s, err := good.Space()
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Integrations) != 2 || len(s.UseLocations) != 2 || len(s.NodesNM) != 2 {
		t.Errorf("space: %+v", s)
	}

	bad := []SpaceSpec{
		{Integrations: []string{"4d"}},
		{Strategies: []string{"diagonal"}},
		{FabLocations: []string{"atlantis"}},
		{UseLocations: []string{"mars"}},
	}
	for i, spec := range bad {
		if _, err := spec.Space(); err == nil {
			t.Errorf("case %d: expected an error", i)
		}
	}
}

// NewExploreResult must carry the decision metrics of non-2D candidates and
// the error of failed ones, and never emit NaN into JSON-bound fields.
func TestNewExploreResult(t *testing.T) {
	rs, err := explore.New(core.Default()).Explore(context.Background(),
		explore.Space{Name: "t"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rs.Results {
		out := NewExploreResult(r)
		if out.ID == "" || out.Integration == "" {
			t.Fatalf("missing identity: %+v", out)
		}
		if r.Err != nil {
			if out.Error == "" || out.TotalKg != 0 {
				t.Errorf("failed candidate rendered as success: %+v", out)
			}
			continue
		}
		if out.TotalKg <= 0 || out.BandwidthValid == nil {
			t.Errorf("successful candidate missing report data: %+v", out)
		}
		if r.Baseline != nil && r.Tc.Verdict != "" && (out.Tc == "" || out.Tr == "") {
			t.Errorf("candidate with baseline lost its verdicts: %+v", out)
		}
		if math.IsNaN(out.EmbodiedSave) || math.IsNaN(out.OverallSave) {
			t.Errorf("NaN leaked into the wire type: %+v", out)
		}
	}
}
