// Wire types for the async job tier (/v1/jobs). A job runs the same
// exploration surface as POST /v1/explore, but detached from the request:
// the server checkpoints progress durably and the client attaches,
// detaches and resumes through cursors instead of holding one long
// connection open.
package apitypes

import (
	"encoding/json"
	"time"
)

// JobRequest is the body of POST /v1/jobs. It mirrors ExploreRequest
// plus an optional evaluation budget.
type JobRequest struct {
	Space SpaceSpec `json:"space"`
	// Top bounds the ranked candidate IDs of the summary (0 = all).
	Top int `json:"top,omitempty"`
	// Params is an optional ParameterSet overlay (see EvaluateRequest).
	Params json.RawMessage `json:"params,omitempty"`
	// Budget caps the candidates evaluated (0 = the whole space), taken in
	// enumeration order so equal budgets give equal summaries.
	Budget int `json:"budget,omitempty"`
}

// JobStatus is the response of POST /v1/jobs and GET /v1/jobs/{id}.
type JobStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	// State is queued | running | shedding | done | failed | cancelled.
	State string `json:"state"`
	// SpecFingerprint/ParamsFingerprint identify what the job computes;
	// two jobs with equal fingerprints produce byte-identical summaries.
	SpecFingerprint   string `json:"spec_fp"`
	ParamsFingerprint string `json:"params_fp"`
	// Error/Panic carry the failure detail for state "failed".
	Error string `json:"error,omitempty"`
	Panic string `json:"panic,omitempty"`
	// NextIndex/Total locate the job inside its enumeration: every
	// candidate below NextIndex is durably folded into the summary.
	NextIndex int `json:"next_index"`
	Total     int `json:"total"`
	// Summary holds the canonical summary bytes once done, or a partial
	// summary rendered from the last checkpoint while running (GET only).
	Summary  json.RawMessage `json:"summary,omitempty"`
	Created  time.Time       `json:"created"`
	Started  time.Time       `json:"started,omitempty"`
	Finished time.Time       `json:"finished,omitempty"`
}

// JobProgress is the position carried by progress events. NextIndex is the
// durably completed candidate count; for a sharded job Shards carries each
// index-range shard's own position.
type JobProgress struct {
	NextIndex int                `json:"next_index"`
	Total     int                `json:"total"`
	Shards    []JobShardProgress `json:"shards,omitempty"`
}

// JobShardProgress is one shard's position inside a sharded job: its fixed
// range [Lo, Hi) and its own durable cursor.
type JobShardProgress struct {
	Lo        int `json:"lo"`
	Hi        int `json:"hi"`
	NextIndex int `json:"next_index"`
}

// JobEvent is one NDJSON line of GET /v1/jobs/{id}/events. Seq is
// per-job, 1-based and contiguous: a client that saw seq n resumes the
// stream with ?from=n+1 after any disconnect.
type JobEvent struct {
	Seq  int    `json:"seq"`
	Type string `json:"type"` // "state" | "progress" | "summary" | "error"
	// State accompanies state events.
	State string `json:"state,omitempty"`
	// Progress accompanies progress events (one per durable checkpoint).
	Progress *JobProgress `json:"progress,omitempty"`
	// Summary accompanies the terminal summary event; its bytes are
	// byte-identical across crashes and resumes.
	Summary json.RawMessage `json:"summary,omitempty"`
	// Error accompanies error events (contained worker panics, re-runs).
	Error string `json:"error,omitempty"`
}

// JobsCounters are the job-tier counters behind /v1/stats.
type JobsCounters struct {
	Submitted uint64 `json:"submitted"`
	Done      uint64 `json:"done"`
	Failed    uint64 `json:"failed"`
	Cancelled uint64 `json:"cancelled"`
	// Shed counts park events (a job can shed more than once).
	Shed uint64 `json:"shed"`
	// Rejected counts admission rejections (rate limits and quotas).
	Rejected uint64 `json:"rejected"`
	Running  int    `json:"running"`
	Queued   int    `json:"queued"`
}
