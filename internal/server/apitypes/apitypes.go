// Package apitypes defines the JSON wire types shared by the HTTP service
// (internal/server) and the CLI tools: requests embed the same design.Design
// JSON that designs/*.json and cmd/carbon3d consume, responses embed the
// model's core reports unchanged, and the workload/space defaults live here
// so every entry point (flag, file or HTTP body) resolves them identically.
package apitypes

import (
	"encoding/json"
	"fmt"

	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/explore"
	"repro/internal/grid"
	"repro/internal/ic"
	"repro/internal/optimize"
	"repro/internal/split"
	"repro/internal/units"
	"repro/internal/workload"
)

// Default workload parameters — the ORIN-class reference point every CLI
// flag default and omitted-field HTTP request resolves to.
const (
	DefaultTOPS            = 30
	DefaultPeakTOPS        = 254
	DefaultEfficiencyTOPSW = 2.74
	DefaultActiveHours     = 365
	DefaultLifetimeYears   = 10
)

// WorkloadSpec is the §3.3 use-phase profile of a request. Every zero field
// falls back to the ORIN-class default, so {} (or an absent spec) is the
// paper's autonomous-vehicle scenario.
type WorkloadSpec struct {
	// TOPS is the fixed application throughput the design must sustain.
	TOPS float64 `json:"tops,omitempty"`
	// PeakTOPS is the chip capability that sets the §3.4 bandwidth
	// requirement.
	PeakTOPS float64 `json:"peak_tops,omitempty"`
	// EfficiencyTOPSW is the surveyed chip efficiency for dies without an
	// explicit per-die value.
	EfficiencyTOPSW float64 `json:"efficiency_topsw,omitempty"`
	// ActiveHoursPerYear is the annual active (driving) time.
	ActiveHoursPerYear float64 `json:"active_hours_per_year,omitempty"`
	// LifetimeYears is the device lifetime the use phase integrates over.
	LifetimeYears float64 `json:"lifetime_years,omitempty"`
}

// Resolve applies the defaults and returns the concrete workload and
// chip-level efficiency. A nil spec resolves to the full default profile.
func (s *WorkloadSpec) Resolve() (workload.Workload, units.Efficiency) {
	var spec WorkloadSpec
	if s != nil {
		spec = *s
	}
	if spec.TOPS <= 0 {
		spec.TOPS = DefaultTOPS
	}
	if spec.PeakTOPS <= 0 {
		spec.PeakTOPS = DefaultPeakTOPS
	}
	if spec.EfficiencyTOPSW <= 0 {
		spec.EfficiencyTOPSW = DefaultEfficiencyTOPSW
	}
	if spec.ActiveHoursPerYear <= 0 {
		spec.ActiveHoursPerYear = DefaultActiveHours
	}
	if spec.LifetimeYears <= 0 {
		spec.LifetimeYears = DefaultLifetimeYears
	}
	w := workload.Workload{
		Name:               "api",
		Throughput:         units.TOPS(spec.TOPS),
		PeakThroughput:     units.TOPS(spec.PeakTOPS),
		ActiveHoursPerYear: spec.ActiveHoursPerYear,
		LifetimeYears:      spec.LifetimeYears,
	}
	return w, units.TOPSPerWatt(spec.EfficiencyTOPSW)
}

// EvaluateRequest is the body of POST /v1/evaluate.
type EvaluateRequest struct {
	// Design is the hardware description — the same JSON as designs/*.json.
	Design *design.Design `json:"design"`
	// Workload optionally overrides the default use-phase profile.
	Workload *WorkloadSpec `json:"workload,omitempty"`
	// Params is an optional ParameterSet overlay (RFC 7386 merge patch
	// against the server's baseline; the same JSON as profiles/*.json).
	// The request is evaluated under the resulting parameter profile,
	// resolved through the server's bounded per-profile model cache.
	Params json.RawMessage `json:"params,omitempty"`
	// RequireBandwidthValid turns a §3.4-infeasible design (a 2.5D split
	// whose interface cannot carry the required bisection bandwidth) into a
	// structured bandwidth_infeasible error instead of a report with
	// "valid": false.
	RequireBandwidthValid bool `json:"require_bandwidth_valid,omitempty"`
}

// EvaluateResponse is the body of a successful POST /v1/evaluate.
type EvaluateResponse struct {
	// Design echoes the evaluated design's name.
	Design string `json:"design"`
	// Report is the full life-cycle evaluation (Eq. 1): the embodied
	// breakdown, the operational model and the total.
	Report *core.TotalReport `json:"report"`
}

// BatchRequest is the body of POST /v1/evaluate/batch: many designs
// evaluated under one shared workload, fanned out across the server's
// worker pool and answered from its process-wide memoization cache.
type BatchRequest struct {
	Designs  []*design.Design `json:"designs"`
	Workload *WorkloadSpec    `json:"workload,omitempty"`
	// Params is an optional ParameterSet overlay applied to every design
	// of the batch (see EvaluateRequest.Params).
	Params json.RawMessage `json:"params,omitempty"`
	// RequireBandwidthValid applies the /v1/evaluate semantics per item.
	RequireBandwidthValid bool `json:"require_bandwidth_valid,omitempty"`
}

// BatchItem is one per-design outcome of a batch. Exactly one of Result and
// Error is set. Result holds the same bytes a single POST /v1/evaluate of
// that design would return.
type BatchItem struct {
	Index  int             `json:"index"`
	Result json.RawMessage `json:"result,omitempty"`
	Error  *Error          `json:"error,omitempty"`
}

// BatchResponse is the body of POST /v1/evaluate/batch.
type BatchResponse struct {
	Count   int         `json:"count"`
	Failed  int         `json:"failed"`
	Results []BatchItem `json:"results"`
}

// Error is the structured error detail of the envelope every non-2xx
// response carries.
type Error struct {
	// Code is a stable machine-readable identifier (bad_request,
	// invalid_design, invalid_params, evaluation_failed,
	// bandwidth_infeasible, not_found, method_not_allowed, timeout,
	// cancelled, internal).
	Code string `json:"code"`
	// Message is the human-readable detail.
	Message string `json:"message"`
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// ErrorResponse is the error envelope: {"error": {"code": ..., "message": ...}}.
type ErrorResponse struct {
	Error Error `json:"error"`
}

// SpaceSpec is the JSON form of an exploration space (explore.Space with
// string axes). Every omitted axis falls back to the engine's ORIN-class
// default, exactly as the cmd/explore flags do.
type SpaceSpec struct {
	Name            string    `json:"name,omitempty"`
	Integrations    []string  `json:"integrations,omitempty"`
	Strategies      []string  `json:"strategies,omitempty"`
	NodesNM         []int     `json:"nodes_nm,omitempty"`
	Gates           []float64 `json:"gates,omitempty"`
	FabLocations    []string  `json:"fab_locations,omitempty"`
	UseLocations    []string  `json:"use_locations,omitempty"`
	LifetimeYears   []float64 `json:"lifetime_years,omitempty"`
	PeakTOPS        float64   `json:"peak_tops,omitempty"`
	EfficiencyTOPSW float64   `json:"efficiency_topsw,omitempty"`
}

// Space validates the string axes against the default model databases and
// returns the concrete exploration space.
func (s SpaceSpec) Space() (explore.Space, error) { return s.SpaceWith(nil) }

// SpaceWith validates the string axes against an explicit grid database
// (nil means grid.Default()) — the parameter profile the exploration will
// run under — and returns the concrete exploration space.
func (s SpaceSpec) SpaceWith(gridDB *grid.DB) (explore.Space, error) {
	if gridDB == nil {
		gridDB = grid.Default()
	}
	out := explore.Space{
		Name:            s.Name,
		NodesNM:         s.NodesNM,
		Gates:           s.Gates,
		LifetimeYears:   s.LifetimeYears,
		PeakTOPS:        s.PeakTOPS,
		EfficiencyTOPSW: s.EfficiencyTOPSW,
	}
	for _, v := range s.Integrations {
		integ := ic.Integration(v)
		if !integ.Valid() {
			return explore.Space{}, fmt.Errorf("integrations: unknown technology %q", v)
		}
		out.Integrations = append(out.Integrations, integ)
	}
	for _, v := range s.Strategies {
		switch strat := split.Strategy(v); strat {
		case split.HomogeneousStrategy, split.HeterogeneousStrategy:
			out.Strategies = append(out.Strategies, strat)
		default:
			return explore.Space{}, fmt.Errorf("strategies: unknown strategy %q", v)
		}
	}
	for _, v := range s.FabLocations {
		loc := grid.Location(v)
		if _, err := gridDB.Intensity(loc); err != nil {
			return explore.Space{}, fmt.Errorf("fab_locations: %w", err)
		}
		out.FabLocations = append(out.FabLocations, loc)
	}
	for _, v := range s.UseLocations {
		loc := grid.Location(v)
		if _, err := gridDB.Intensity(loc); err != nil {
			return explore.Space{}, fmt.Errorf("use_locations: %w", err)
		}
		out.UseLocations = append(out.UseLocations, loc)
	}
	return out, nil
}

// ExploreRequest is the body of POST /v1/explore.
type ExploreRequest struct {
	Space SpaceSpec `json:"space"`
	// Top bounds the ranked candidate IDs in the closing summary event
	// (0 = all).
	Top int `json:"top,omitempty"`
	// Params is an optional ParameterSet overlay the whole exploration
	// runs under (see EvaluateRequest.Params).
	Params json.RawMessage `json:"params,omitempty"`
}

// ExploreResult is one evaluated candidate of an exploration stream.
type ExploreResult struct {
	ID          string `json:"id"`
	Integration string `json:"integration"`
	// Error is the per-candidate evaluation failure (e.g. a design over the
	// wafer limit); the numeric fields are zero when set.
	Error string `json:"error,omitempty"`
	// BandwidthValid is the §3.4 verdict (absent for embodied-only results).
	BandwidthValid *bool   `json:"bandwidth_valid,omitempty"`
	EmbodiedKg     float64 `json:"embodied_kg"`
	OperationalKg  float64 `json:"operational_kg"`
	TotalKg        float64 `json:"total_kg"`
	// Decision metrics against the candidate's 2D baseline (Eq. 2), in the
	// paper's Table 5 notation (">0", "∞", ">10.4 yr", "<3.2 yr").
	EmbodiedSave float64 `json:"embodied_save,omitempty"`
	OverallSave  float64 `json:"overall_save,omitempty"`
	Tc           string  `json:"tc,omitempty"`
	Tr           string  `json:"tr,omitempty"`
}

// NewExploreResult flattens one engine result into its wire form.
func NewExploreResult(r explore.Result) ExploreResult {
	out := ExploreResult{ID: r.Candidate.ID}
	if r.Candidate.Design != nil {
		out.Integration = string(r.Candidate.Design.Integration)
	}
	if r.Err != nil {
		out.Error = r.Err.Error()
		return out
	}
	out.EmbodiedKg = r.Embodied()
	out.OperationalKg = r.Operational()
	out.TotalKg = r.Total()
	if r.Report != nil && r.Report.Operational != nil {
		v := r.Report.Operational.Valid
		out.BandwidthValid = &v
	}
	if r.Baseline != nil {
		out.EmbodiedSave = r.EmbodiedSave
		out.OverallSave = r.OverallSave
		if r.Tc.Verdict != "" {
			out.Tc = r.Tc.String()
			out.Tr = r.Tr.String()
		}
	}
	return out
}

// EngineStats is the JSON form of the exploration engine's counters. The
// embodied_* fields count the term-factorized sub-cache: embodied sub-terms
// computed versus answered from the embodied cache or a compiled plan slot
// (evaluations that paid only the cheap operational term). The block_*
// fields count the columnar block kernel: candidates evaluated through it
// (vs the per-candidate scalar path), the runs they were grouped into, and
// the operational stencils those runs compiled.
type EngineStats struct {
	Evaluations  uint64  `json:"evaluations"`
	CacheHits    uint64  `json:"cache_hits"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	CacheEntries int     `json:"cache_entries"`
	Evictions    uint64  `json:"evictions"`

	EmbodiedEvaluations uint64  `json:"embodied_evaluations"`
	EmbodiedCacheHits   uint64  `json:"embodied_cache_hits"`
	EmbodiedReuseRate   float64 `json:"embodied_reuse_rate"`
	EmbodiedEntries     int     `json:"embodied_entries"`
	EmbodiedEvictions   uint64  `json:"embodied_evictions"`

	BlockCandidates uint64 `json:"block_candidates"`
	BlockRuns       uint64 `json:"block_runs"`
	BlockStencils   uint64 `json:"block_stencils"`

	// SequencerBypassed counts reductions served by the sequencer-free
	// sharded path (Engine.Reduce); ShardsMerged counts the worker-local
	// reducer shards those reductions merged at their barriers.
	SequencerBypassed uint64 `json:"sequencer_bypassed"`
	ShardsMerged      uint64 `json:"shards_merged"`
}

// NewEngineStats converts the engine counters.
func NewEngineStats(st explore.Stats) EngineStats {
	return EngineStats{
		Evaluations:  st.Evaluations,
		CacheHits:    st.CacheHits,
		CacheHitRate: st.HitRate(),
		CacheEntries: st.CacheEntries,
		Evictions:    st.Evictions,

		EmbodiedEvaluations: st.EmbodiedEvaluations,
		EmbodiedCacheHits:   st.EmbodiedCacheHits,
		EmbodiedReuseRate:   st.EmbodiedReuseRate(),
		EmbodiedEntries:     st.EmbodiedCacheEntries,
		EmbodiedEvictions:   st.EmbodiedEvictions,

		BlockCandidates: st.BlockCandidates,
		BlockRuns:       st.BlockRuns,
		BlockStencils:   st.BlockStencils,

		SequencerBypassed: st.SequencerBypassed,
		ShardsMerged:      st.ShardsMerged,
	}
}

// ExploreSummary closes an exploration stream: scale, ranking, frontier and
// the engine counters after the sweep.
type ExploreSummary struct {
	Candidates int `json:"candidates"`
	Evaluated  int `json:"evaluated"`
	Failed     int `json:"failed"`
	// Ranked lists candidate IDs by ascending life-cycle total (bounded by
	// ExploreRequest.Top).
	Ranked []string `json:"ranked"`
	// Frontier lists the Pareto-optimal candidate IDs, lowest embodied
	// carbon first.
	Frontier []string    `json:"frontier"`
	Stats    EngineStats `json:"stats"`
}

// ExploreEvent is one NDJSON line of the POST /v1/explore stream: result
// lines as candidates finish, then exactly one summary (or error) line.
type ExploreEvent struct {
	Type    string          `json:"type"` // "result" | "summary" | "error"
	Result  *ExploreResult  `json:"result,omitempty"`
	Summary *ExploreSummary `json:"summary,omitempty"`
	Error   *Error          `json:"error,omitempty"`
}

// OptimizeRequest is the body of POST /v1/optimize: search a space for
// its lowest life-cycle carbon candidate without enumerating it. The
// space may be far larger than the /v1/explore limit — the server bounds
// the distinct embodied designs (the compiled plan's memory) and the
// charged work (the budget), not the candidate count.
type OptimizeRequest struct {
	Space SpaceSpec `json:"space"`
	// Driver is "coordinate", "anneal" or "halving" (the default).
	Driver string `json:"driver,omitempty"`
	// Seed feeds the run's random generator; runs are deterministic in
	// (space, profile, driver, seed, budget).
	Seed int64 `json:"seed,omitempty"`
	// Budget caps the charged model work (candidate evaluations + embodied
	// bound probes). Zero, or anything above the server's maximum, is
	// clamped to the server's maximum.
	Budget int `json:"budget,omitempty"`
	// Params is an optional ParameterSet overlay the run evaluates under
	// (see EvaluateRequest.Params).
	Params json.RawMessage `json:"params,omitempty"`
}

// OptimizeTrajectoryPoint is one incumbent improvement of a run.
type OptimizeTrajectoryPoint struct {
	// Charged is the model work charged when the improvement was found.
	Charged int `json:"charged"`
	// ID is the improving candidate; TotalKg its life-cycle total.
	ID      string  `json:"id"`
	TotalKg float64 `json:"total_kg"`
}

// OptimizeStats is the wire form of a run's optimize.Stats.
type OptimizeStats struct {
	Driver       string `json:"driver"`
	SpaceSize    int    `json:"space_size"`
	Evaluations  int    `json:"evaluations"`
	BoundProbes  int    `json:"bound_probes"`
	Prunes       int    `json:"prunes"`
	PrunedBlocks int    `json:"pruned_blocks"`
	Blocks       int    `json:"blocks"`
	// EvaluatedFraction is (evaluations + bound probes) / space_size — the
	// share of the space the run charged as model work.
	EvaluatedFraction float64 `json:"evaluated_fraction"`
	BoundTightness    float64 `json:"bound_tightness"`
	// Complete reports a proven global optimum: every block was fully
	// covered or pruned by its admissible bound within the budget.
	Complete   bool                      `json:"complete"`
	Trajectory []OptimizeTrajectoryPoint `json:"trajectory,omitempty"`
}

// NewOptimizeStats converts a run's stats.
func NewOptimizeStats(st optimize.Stats) OptimizeStats {
	out := OptimizeStats{
		Driver:            string(st.Driver),
		SpaceSize:         st.SpaceSize,
		Evaluations:       st.Evaluations,
		BoundProbes:       st.BoundProbes,
		Prunes:            st.Prunes,
		PrunedBlocks:      st.PrunedBlocks,
		Blocks:            st.Blocks,
		EvaluatedFraction: st.EvaluatedFraction(),
		BoundTightness:    st.BoundTightness,
		Complete:          st.Complete,
	}
	for _, p := range st.Trajectory {
		out.Trajectory = append(out.Trajectory, OptimizeTrajectoryPoint{
			Charged: p.Charged, ID: p.ID, TotalKg: p.TotalKg,
		})
	}
	return out
}

// OptimizeResponse is the body of a successful POST /v1/optimize.
type OptimizeResponse struct {
	// Found reports whether any candidate evaluated successfully; Best and
	// BestIndex are only meaningful when set.
	Found bool `json:"found"`
	// Best is the lowest-carbon candidate found — the proven global optimum
	// when stats.complete — in the same wire form as /v1/explore results.
	Best *ExploreResult `json:"best,omitempty"`
	// BestIndex is Best's enumeration index in the space.
	BestIndex int           `json:"best_index,omitempty"`
	Stats     OptimizeStats `json:"stats"`
}

// OptimizeCounters aggregate POST /v1/optimize work since boot (part of
// GET /v1/stats).
type OptimizeCounters struct {
	Runs        uint64 `json:"runs"`
	Complete    uint64 `json:"complete"`
	Evaluations uint64 `json:"evaluations"`
	BoundProbes uint64 `json:"bound_probes"`
	Prunes      uint64 `json:"prunes"`
}

// IntegrationInfo describes one Table 1 technology for client UIs.
type IntegrationInfo struct {
	ID      string `json:"id"`
	Display string `json:"display"`
	// Class is "2d", "2.5d" or "3d".
	Class string `json:"class"`
}

// LocationInfo describes one grid region and its carbon intensity.
type LocationInfo struct {
	ID               string  `json:"id"`
	IntensityGPerKWh float64 `json:"intensity_g_per_kwh"`
}

// MetaResponse is the body of GET /v1/meta: every enumerable input a client
// needs to build a design form or a space spec, plus the provenance of the
// server's active parameter baseline.
type MetaResponse struct {
	Integrations []IntegrationInfo `json:"integrations"`
	Locations    []LocationInfo    `json:"locations"`
	NodesNM      []int             `json:"nodes_nm"`
	Strategies   []string          `json:"strategies"`
	Stackings    []string          `json:"stackings"`
	Flows        []string          `json:"flows"`
	Orders       []string          `json:"orders"`
	// DefaultWorkload is the profile an absent WorkloadSpec resolves to.
	DefaultWorkload WorkloadSpec `json:"default_workload"`
	// ParamsVersion and ParamsFingerprint identify the baseline
	// ParameterSet every request without an overlay evaluates under.
	ParamsVersion     string `json:"params_version"`
	ParamsFingerprint string `json:"params_fingerprint"`
}

// EndpointStats are the per-endpoint request counters of GET /v1/stats.
type EndpointStats struct {
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	TotalMS  float64 `json:"total_ms"`
	AvgMS    float64 `json:"avg_ms"`
}

// ProfileStats are the per-profile model-cache counters of GET /v1/stats:
// how many parameter profiles the server has built, how often an inline
// overlay was answered by an already-built profile, and how many profiles
// the bounded cache has evicted.
type ProfileStats struct {
	Loaded    uint64 `json:"loaded"`
	Hits      uint64 `json:"hits"`
	Evictions uint64 `json:"evictions"`
	Resident  int    `json:"resident"`
	Limit     int    `json:"limit"`
}

// StatsResponse is the body of GET /v1/stats.
type StatsResponse struct {
	UptimeSeconds    float64                  `json:"uptime_seconds"`
	Endpoints        map[string]EndpointStats `json:"endpoints"`
	DesignsEvaluated uint64                   `json:"designs_evaluated"`
	InFlight         int64                    `json:"in_flight"`
	MaxConcurrent    int                      `json:"max_concurrent"`
	CacheLimit       int                      `json:"cache_limit"`
	Engine           EngineStats              `json:"engine"`
	// Profiles counts the bounded per-profile model cache behind inline
	// params overlays.
	Profiles ProfileStats `json:"profiles"`
	// Optimize aggregates the optimizer runs served by POST /v1/optimize.
	Optimize OptimizeCounters `json:"optimize"`
	// Jobs aggregates the async job tier (absent when it failed to boot).
	Jobs *JobsCounters `json:"jobs,omitempty"`
	// Dist aggregates the distributed shard tier: dispatches to the
	// replica pool plus shard chunks served for other coordinators.
	Dist *DistCounters `json:"dist,omitempty"`
}
