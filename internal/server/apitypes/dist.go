// Wire types for the distributed shard tier: POST /v1/shards/run (a
// coordinator farming one shard chunk out to a replica) and /v1/replicas
// (replica registration and health listing). A shard chunk is a pure
// function — reducer snapshots plus an index range in, advanced snapshots
// out — so the request carries everything a stateless replica needs to
// compute bytes identical to local execution: the full spec, the
// fingerprints to verify it resolved identically, and the range.
package apitypes

import (
	"encoding/json"
	"time"
)

// ShardRunRequest is the body of POST /v1/shards/run: evaluate the index
// range [NextIndex, ChunkHi) of the spec'd space and fold it into the
// given reducer snapshots.
type ShardRunRequest struct {
	// JobID is the coordinator's job this chunk belongs to (logging only;
	// the replica is stateless).
	JobID string `json:"job_id,omitempty"`
	// SpecFP/ParamsFP are the coordinator's fingerprints of the spec and
	// parameter overlay. The replica recomputes both and refuses on
	// mismatch — a replica running different parameters would silently
	// break byte-identity.
	SpecFP   string `json:"spec_fp"`
	ParamsFP string `json:"params_fp"`
	// BaselineFP is the coordinator's baseline ParameterSet fingerprint;
	// a replica booted with a different baseline refuses the chunk.
	BaselineFP string `json:"baseline_fp,omitempty"`
	// Space/Top/Params/Budget mirror the job spec (see JobRequest).
	Space  SpaceSpec       `json:"space"`
	Top    int             `json:"top,omitempty"`
	Params json.RawMessage `json:"params,omitempty"`
	Budget int             `json:"budget,omitempty"`
	// Lo/Hi fix the owning shard's range; NextIndex..ChunkHi is the chunk
	// to evaluate (Lo ≤ NextIndex ≤ ChunkHi ≤ Hi).
	Lo        int `json:"lo"`
	Hi        int `json:"hi"`
	NextIndex int `json:"next_index"`
	ChunkHi   int `json:"chunk_hi"`
	// Ranked/Frontier/Stats are the shard's reducer snapshots as of
	// NextIndex (the explore snapshot envelopes, bit-exact).
	Ranked   json.RawMessage `json:"ranked"`
	Frontier json.RawMessage `json:"frontier"`
	Stats    json.RawMessage `json:"stats"`
}

// ShardRunResponse returns the advanced shard state: snapshots folded
// through NextIndex == the request's ChunkHi.
type ShardRunResponse struct {
	NextIndex int `json:"next_index"`
	// Evaluated is the candidate count this call folded (ChunkHi − the
	// request's NextIndex) — bookkeeping, not part of the state.
	Evaluated int             `json:"evaluated"`
	Ranked    json.RawMessage `json:"ranked"`
	Frontier  json.RawMessage `json:"frontier"`
	Stats     json.RawMessage `json:"stats"`
}

// RegisterReplicaRequest is the body of POST /v1/replicas: a worker
// announcing (or re-announcing — the call doubles as the heartbeat) the
// base URL the coordinator should dispatch shard chunks to.
type RegisterReplicaRequest struct {
	URL string `json:"url"`
}

// ReplicaInfo is one replica's health as the coordinator sees it
// (GET /v1/replicas).
type ReplicaInfo struct {
	URL string `json:"url"`
	// Static replicas were configured at boot and are exempt from the
	// heartbeat timeout; registered ones go unhealthy when silent.
	Static  bool `json:"static"`
	Healthy bool `json:"healthy"`
	// BreakerOpen reports the circuit breaker tripped by consecutive
	// dispatch failures; the replica is skipped until a cooldown probe.
	BreakerOpen bool `json:"breaker_open"`
	InFlight    int  `json:"in_flight"`
	// LastSeen is the last registration/heartbeat time (zero for static).
	LastSeen time.Time `json:"last_seen,omitempty"`
}

// ReplicasResponse is the body of GET /v1/replicas.
type ReplicasResponse struct {
	Replicas []ReplicaInfo `json:"replicas"`
}

// DistCounters are the distributed-shard counters of GET /v1/stats:
// the coordinator side (dispatch outcomes over the replica pool) plus
// the replica side (chunks this process served for some coordinator).
type DistCounters struct {
	// Replicas/Healthy size the pool right now.
	Replicas int `json:"replicas"`
	Healthy  int `json:"healthy"`
	// Dispatched counts chunk attempts sent to replicas; Completed the
	// ones whose result was accepted.
	Dispatched uint64 `json:"dispatched"`
	Completed  uint64 `json:"completed"`
	// Retries counts re-attempts after a failed dispatch; Reassignments
	// the retries that moved the chunk to a different replica.
	Retries       uint64 `json:"retries"`
	Reassignments uint64 `json:"reassignments"`
	// LeaseExpiries counts chunks abandoned because the replica missed
	// the lease; StaleDropped counts late completions from abandoned
	// attempts whose results were discarded (the range re-ran elsewhere).
	LeaseExpiries uint64 `json:"lease_expiries"`
	StaleDropped  uint64 `json:"stale_dropped"`
	// BreakerOpened counts closed→open circuit-breaker transitions.
	BreakerOpened uint64 `json:"breaker_opened"`
	// LocalFallbacks counts chunks that exhausted dispatch and ran
	// in-process — the graceful-degradation path.
	LocalFallbacks uint64 `json:"local_fallbacks"`
	// ShardRunsServed/CandidatesServed are the replica side: chunks and
	// candidates this process evaluated via POST /v1/shards/run.
	ShardRunsServed  uint64 `json:"shard_runs_served"`
	CandidatesServed uint64 `json:"candidates_served"`
}
