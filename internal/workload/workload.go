// Package workload models the fixed-throughput use phase of §3.3 and
// carries the NVIDIA DRIVE series data of Table 4 that the §5 case studies
// evaluate.
//
// The paper's autonomous-vehicle scenario: a DNN perception pipeline with a
// fixed throughput requirement runs whenever the vehicle drives. The fleet
// usage profile (driving hours per day, device lifetime) follows Sudhakar
// et al. ("Data Centers on Wheels", the paper's [28]) — roughly an hour of
// driving per day and a 10-year device life.
package workload

import (
	"fmt"

	"repro/internal/units"
)

// Workload is one fixed-throughput application profile (one k of Eq. 16).
type Workload struct {
	// Name identifies the workload in reports.
	Name string
	// Throughput is the fixed application requirement Th the design must
	// sustain while active.
	Throughput units.Throughput
	// PeakThroughput is the chip's design capability, which sets the
	// on-chip bandwidth a 2.5D split must replace (§3.4). Zero means
	// "same as Throughput".
	PeakThroughput units.Throughput
	// ActiveHoursPerYear is the annual active (driving) time.
	ActiveHoursPerYear float64
	// LifetimeYears is the device life T_life the decision metrics
	// compare against.
	LifetimeYears float64
}

// Validate checks the profile.
func (w Workload) Validate() error {
	if w.Throughput <= 0 {
		return fmt.Errorf("workload %q: non-positive throughput", w.Name)
	}
	if w.PeakThroughput < 0 {
		return fmt.Errorf("workload %q: negative peak throughput", w.Name)
	}
	if w.PeakThroughput > 0 && w.PeakThroughput < w.Throughput {
		return fmt.Errorf("workload %q: peak throughput %v below requirement %v",
			w.Name, w.PeakThroughput, w.Throughput)
	}
	if w.ActiveHoursPerYear <= 0 || w.ActiveHoursPerYear > units.HoursPerYear {
		return fmt.Errorf("workload %q: active hours %v outside (0, %v]",
			w.Name, w.ActiveHoursPerYear, units.HoursPerYear)
	}
	if w.LifetimeYears <= 0 {
		return fmt.Errorf("workload %q: non-positive lifetime", w.Name)
	}
	return nil
}

// Peak returns the chip-capability throughput, defaulting to the
// application requirement.
func (w Workload) Peak() units.Throughput {
	if w.PeakThroughput > 0 {
		return w.PeakThroughput
	}
	return w.Throughput
}

// ActivePerYear returns the annual active time.
func (w Workload) ActivePerYear() units.Time {
	return units.Hours(w.ActiveHoursPerYear)
}

// Lifetime returns the device lifetime.
func (w Workload) Lifetime() units.Time {
	return units.Years(w.LifetimeYears)
}

// AVPipeline returns the paper's autonomous-vehicle perception workload for
// a chip with the given peak capability: a fixed ≈30 TOPS DNN pipeline, one
// driving hour per day, 10-year device life (§5: "the average 10-year
// lifetime of AV devices"). A chip whose capability is below the pipeline
// requirement (PX2) runs the pipeline at its capability — the fixed-work
// abstraction saturates the part.
func AVPipeline(peak units.Throughput) Workload {
	th := units.TOPS(30)
	if peak > 0 && peak < th {
		th = peak
	}
	return Workload{
		Name:               "av-dnn-pipeline",
		Throughput:         th,
		PeakThroughput:     peak,
		ActiveHoursPerYear: 365,
		LifetimeYears:      10,
	}
}

// DriveChip is one row of Table 4 (NVIDIA GPU DRIVE series).
type DriveChip struct {
	Name       string
	ProcessNM  int
	GatesB     float64          // gate count in billions
	Efficiency units.Efficiency // TOPS/W
	Year       int
	PeakTOPS   float64 // peak compute capability (product specification)
}

// Gates returns the absolute gate count.
func (d DriveChip) Gates() float64 { return d.GatesB * 1e9 }

// Peak returns the chip's capability throughput.
func (d DriveChip) Peak() units.Throughput { return units.TOPS(d.PeakTOPS) }

// Workload returns the AV pipeline profile bound to this chip's capability.
func (d DriveChip) Workload() Workload { return AVPipeline(d.Peak()) }

// DriveSeries returns Table 4 with the product peak-TOPS capability added
// from the vendor specifications (PX2 ≈24, XAVIER ≈30, ORIN ≈254,
// THOR ≈2000 TOPS).
func DriveSeries() []DriveChip {
	return []DriveChip{
		{Name: "PX2", ProcessNM: 16, GatesB: 15.3, Efficiency: units.TOPSPerWatt(0.75), Year: 2016, PeakTOPS: 24},
		{Name: "XAVIER", ProcessNM: 12, GatesB: 21, Efficiency: units.TOPSPerWatt(1.0), Year: 2017, PeakTOPS: 30},
		{Name: "ORIN", ProcessNM: 7, GatesB: 17, Efficiency: units.TOPSPerWatt(2.74), Year: 2019, PeakTOPS: 254},
		{Name: "THOR", ProcessNM: 5, GatesB: 77, Efficiency: units.TOPSPerWatt(12.5), Year: 2022, PeakTOPS: 2000},
	}
}

// DriveChipByName looks up a Table 4 chip.
func DriveChipByName(name string) (DriveChip, error) {
	for _, c := range DriveSeries() {
		if c.Name == name {
			return c, nil
		}
	}
	return DriveChip{}, fmt.Errorf("workload: unknown DRIVE chip %q", name)
}
