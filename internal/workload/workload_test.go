package workload

import (
	"math"
	"testing"

	"repro/internal/units"
)

// Table 4 of the paper, verbatim.
func TestTable4DriveSpecs(t *testing.T) {
	want := []struct {
		name  string
		nm    int
		gates float64
		eff   float64
		year  int
	}{
		{"PX2", 16, 15.3, 0.75, 2016},
		{"XAVIER", 12, 21, 1.0, 2017},
		{"ORIN", 7, 17, 2.74, 2019},
		{"THOR", 5, 77, 12.5, 2022},
	}
	series := DriveSeries()
	if len(series) != len(want) {
		t.Fatalf("DriveSeries has %d chips, want %d", len(series), len(want))
	}
	for i, w := range want {
		c := series[i]
		if c.Name != w.name || c.ProcessNM != w.nm || c.GatesB != w.gates ||
			math.Abs(c.Efficiency.TOPSPerW()-w.eff) > 1e-9 || c.Year != w.year {
			t.Errorf("row %d = %+v, want %+v", i, c, w)
		}
	}
}

// Table 4's trend: efficiency grows exponentially over generations while
// the node shrinks.
func TestDriveSeriesTrends(t *testing.T) {
	s := DriveSeries()
	for i := 1; i < len(s); i++ {
		if s[i].Efficiency <= s[i-1].Efficiency {
			t.Errorf("%s efficiency should exceed %s", s[i].Name, s[i-1].Name)
		}
		if s[i].ProcessNM >= s[i-1].ProcessNM {
			t.Errorf("%s node should be more advanced than %s", s[i].Name, s[i-1].Name)
		}
		if s[i].Year <= s[i-1].Year {
			t.Errorf("%s year should follow %s", s[i].Name, s[i-1].Name)
		}
		if s[i].PeakTOPS <= s[i-1].PeakTOPS {
			t.Errorf("%s peak should exceed %s", s[i].Name, s[i-1].Name)
		}
	}
}

func TestDriveChipByName(t *testing.T) {
	c, err := DriveChipByName("ORIN")
	if err != nil {
		t.Fatal(err)
	}
	if c.Gates() != 17e9 {
		t.Errorf("ORIN gates = %v, want 17e9", c.Gates())
	}
	if c.Peak().TOPS() != 254 {
		t.Errorf("ORIN peak = %v, want 254 TOPS", c.Peak())
	}
	if _, err := DriveChipByName("HYPERION"); err == nil {
		t.Error("unknown chip should error")
	}
}

func TestAVPipelineProfile(t *testing.T) {
	w := AVPipeline(units.TOPS(254))
	if err := w.Validate(); err != nil {
		t.Fatal(err)
	}
	if w.Throughput.TOPS() != 30 {
		t.Errorf("AV pipeline throughput = %v, want 30 TOPS", w.Throughput)
	}
	if w.LifetimeYears != 10 {
		t.Errorf("AV lifetime = %v, want the paper's 10 years", w.LifetimeYears)
	}
	if w.Peak().TOPS() != 254 {
		t.Errorf("peak = %v, want 254", w.Peak())
	}
	if got := w.ActivePerYear().Hours(); got != 365 {
		t.Errorf("active hours = %v, want 365 (1 h/day)", got)
	}
	if got := w.Lifetime().Years(); math.Abs(got-10) > 1e-9 {
		t.Errorf("lifetime = %v years, want 10", got)
	}
}

func TestWorkloadValidation(t *testing.T) {
	ok := Workload{Name: "w", Throughput: units.TOPS(10),
		ActiveHoursPerYear: 100, LifetimeYears: 5}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid workload rejected: %v", err)
	}
	cases := []Workload{
		{Name: "no-th", ActiveHoursPerYear: 100, LifetimeYears: 5},
		{Name: "neg-peak", Throughput: units.TOPS(10), PeakThroughput: -1,
			ActiveHoursPerYear: 100, LifetimeYears: 5},
		{Name: "peak-below-req", Throughput: units.TOPS(10),
			PeakThroughput: units.TOPS(5), ActiveHoursPerYear: 100, LifetimeYears: 5},
		{Name: "no-hours", Throughput: units.TOPS(10), LifetimeYears: 5},
		{Name: "too-many-hours", Throughput: units.TOPS(10),
			ActiveHoursPerYear: 9000, LifetimeYears: 5},
		{Name: "no-life", Throughput: units.TOPS(10), ActiveHoursPerYear: 100},
	}
	for _, w := range cases {
		if err := w.Validate(); err == nil {
			t.Errorf("%s: expected validation error", w.Name)
		}
	}
}

func TestPeakDefaultsToThroughput(t *testing.T) {
	w := Workload{Name: "w", Throughput: units.TOPS(10),
		ActiveHoursPerYear: 100, LifetimeYears: 5}
	if w.Peak() != w.Throughput {
		t.Errorf("peak = %v, want throughput %v", w.Peak(), w.Throughput)
	}
}

// PX2 cannot natively sustain the 30 TOPS pipeline (24 TOPS peak): the AV
// profile clamps the requirement to the chip capability, so the workload
// validates and the chip simply runs saturated.
func TestPX2WorkloadClamped(t *testing.T) {
	px2, _ := DriveChipByName("PX2")
	w := px2.Workload()
	if err := w.Validate(); err != nil {
		t.Fatalf("PX2 workload should validate after clamping: %v", err)
	}
	if w.Throughput.TOPS() != 24 {
		t.Errorf("PX2 pipeline throughput = %v, want clamped 24 TOPS", w.Throughput)
	}
	// Later chips keep the full 30 TOPS requirement.
	orin, _ := DriveChipByName("ORIN")
	if got := orin.Workload().Throughput.TOPS(); got != 30 {
		t.Errorf("ORIN pipeline throughput = %v, want 30 TOPS", got)
	}
}
