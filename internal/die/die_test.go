package die

import (
	"math"
	"testing"

	"repro/internal/geom"
	"repro/internal/grid"
	"repro/internal/tech"
	"repro/internal/units"
)

func orinSpec() Spec {
	n := tech.MustForProcess(7)
	return Spec{
		Node:       n,
		Area:       units.SquareMillimeters(455),
		BEOLLayers: 13,
		FabCI:      grid.MustIntensity(grid.Taiwan),
	}
}

func TestWaferCarbonPerAreaMatchesNodeHelper(t *testing.T) {
	s := orinSpec()
	got, err := s.WaferCarbonPerArea()
	if err != nil {
		t.Fatal(err)
	}
	want := s.Node.CarbonPerArea(s.FabCI, s.BEOLLayers)
	if math.Abs(got.KgPerCM2()-want.KgPerCM2()) > 1e-12 {
		t.Errorf("per-area carbon = %v, want node helper %v", got, want)
	}
}

func TestWaferCarbonScale(t *testing.T) {
	s := orinSpec()
	wc, err := s.WaferCarbon()
	if err != nil {
		t.Fatal(err)
	}
	// A 300 mm wafer at ≈1.6 kg/cm² is ≈1.1 tonnes of CO₂.
	if wc.Kg() < 800 || wc.Kg() > 1500 {
		t.Errorf("wafer carbon = %v, want 800–1500 kg", wc)
	}
}

func TestDefaultWaferIs300mm(t *testing.T) {
	s := orinSpec()
	if got := s.wafer(); got != geom.Wafer300 {
		t.Errorf("default wafer = %v, want %v", got, geom.Wafer300)
	}
	s.WaferArea = geom.Wafer200
	if got := s.wafer(); got != geom.Wafer200 {
		t.Errorf("explicit wafer = %v, want %v", got, geom.Wafer200)
	}
}

func TestValidation(t *testing.T) {
	base := orinSpec()

	s := base
	s.Node = nil
	if _, err := s.WaferCarbon(); err == nil {
		t.Error("nil node should error")
	}
	s = base
	s.Area = 0
	if _, err := s.WaferCarbon(); err == nil {
		t.Error("zero area should error")
	}
	s = base
	s.BEOLLayers = 0
	if _, err := s.WaferCarbon(); err == nil {
		t.Error("zero BEOL layers should error")
	}
	s = base
	s.BEOLLayers = s.Node.MaxBEOL + 1
	if _, err := s.WaferCarbon(); err == nil {
		t.Error("BEOL above node max should error")
	}
	s = base
	s.FabCI = 0
	if _, err := s.WaferCarbon(); err == nil {
		t.Error("zero fab CI should error")
	}
	s = base
	s.Tiers = 3
	if _, err := s.WaferCarbon(); err == nil {
		t.Error("3-tier M3D should be rejected")
	}
	s = base
	if _, err := s.CarbonPerGoodDie(0); err == nil {
		t.Error("zero yield should error")
	}
	if _, err := s.CarbonPerGoodDie(1.2); err == nil {
		t.Error("yield > 1 should error")
	}
}

func TestIntrinsicYieldOrin(t *testing.T) {
	s := orinSpec()
	y, err := s.IntrinsicYield()
	if err != nil {
		t.Fatal(err)
	}
	// 455 mm² at D0 = 0.138, α = 10 ⇒ ≈ 0.544.
	if math.Abs(y-0.544) > 0.005 {
		t.Errorf("ORIN 2D yield = %.4f, want ≈0.544", y)
	}
}

func TestStandalone2DComposition(t *testing.T) {
	s := orinSpec()
	y, _ := s.IntrinsicYield()
	perCand, err := s.PerCandidateCarbon()
	if err != nil {
		t.Fatal(err)
	}
	good, err := s.Standalone2D()
	if err != nil {
		t.Fatal(err)
	}
	if want := perCand.Kg() / y; math.Abs(good.Kg()-want) > 1e-9 {
		t.Errorf("standalone carbon = %v, want %v", good.Kg(), want)
	}
	// Sanity scale: an ORIN-class 7 nm die lands in the tens of kg.
	if good.Kg() < 8 || good.Kg() > 30 {
		t.Errorf("ORIN die carbon = %v, want 8–30 kg", good)
	}
}

// Fewer BEOL layers must reduce die carbon (the paper's EPYC validation
// explicitly models this).
func TestFewerBEOLLayersCheaper(t *testing.T) {
	s := orinSpec()
	full, err := s.Standalone2D()
	if err != nil {
		t.Fatal(err)
	}
	s.BEOLLayers = 10
	fewer, err := s.Standalone2D()
	if err != nil {
		t.Fatal(err)
	}
	if fewer >= full {
		t.Errorf("10-layer die %v should be cheaper than 13-layer die %v", fewer, full)
	}
}

// Splitting a die in half: two half dies cost less total than one full die
// because yield improves and edge loss shrinks — the paper's core homogeneous
// 3D argument.
func TestSplittingSavesDieCarbon(t *testing.T) {
	full := orinSpec()
	half := full
	half.Area = units.SquareMillimeters(227.5)
	half.BEOLLayers = 11

	fullC, err := full.Standalone2D()
	if err != nil {
		t.Fatal(err)
	}
	halfC, err := half.Standalone2D()
	if err != nil {
		t.Fatal(err)
	}
	if 2*halfC.Kg() >= fullC.Kg() {
		t.Errorf("2 half dies (%.2f kg) should beat 1 full die (%.2f kg)",
			2*halfC.Kg(), fullC.Kg())
	}
}

func TestM3DSequentialFootprint(t *testing.T) {
	// M3D: one 227.5 mm² footprint, two tiers.
	m3d := orinSpec()
	m3d.Area = units.SquareMillimeters(227.5)
	m3d.BEOLLayers = 11
	m3d.Tiers = 2
	m3d.SeqFEOLPremium = 0.15
	m3d.SeqILDShare = 0.05
	m3d.SeqDefectMultiplier = 1.3

	plain := m3d
	plain.Tiers = 0

	// Sequential processing must cost more per area than a plain die of
	// the same footprint...
	cpaM3D, err := m3d.WaferCarbonPerArea()
	if err != nil {
		t.Fatal(err)
	}
	cpaPlain, _ := plain.WaferCarbonPerArea()
	if cpaM3D <= cpaPlain {
		t.Errorf("M3D per-area %v should exceed plain %v", cpaM3D, cpaPlain)
	}

	// ...and yield less...
	yM3D, err := m3d.IntrinsicYield()
	if err != nil {
		t.Fatal(err)
	}
	yPlain, _ := plain.IntrinsicYield()
	if yM3D >= yPlain {
		t.Errorf("M3D yield %v should be below plain %v", yM3D, yPlain)
	}

	// ...but the whole M3D die must still be far cheaper than the 455 mm²
	// monolithic 2D die it replaces (half footprint, better yield).
	full := orinSpec()
	fullC, _ := full.Standalone2D()
	m3dC, err := m3d.Standalone2D()
	if err != nil {
		t.Fatal(err)
	}
	if m3dC.Kg() >= fullC.Kg()*0.75 {
		t.Errorf("M3D die %v should be well below the 2D die %v", m3dC, fullC)
	}
}

func TestSeqDefectMultiplierFloor(t *testing.T) {
	m3d := orinSpec()
	m3d.Area = units.SquareMillimeters(227.5)
	m3d.BEOLLayers = 11
	m3d.Tiers = 2
	m3d.SeqDefectMultiplier = 0.5 // below 1: treated as no extra defects
	y, err := m3d.IntrinsicYield()
	if err != nil {
		t.Fatal(err)
	}
	plain := m3d
	plain.Tiers = 0
	yPlain, _ := plain.IntrinsicYield()
	if math.Abs(y-yPlain) > 1e-12 {
		t.Errorf("multiplier < 1 should clamp to 1: %v vs %v", y, yPlain)
	}
}

// A dirtier fab grid must raise die carbon linearly in the EPA share.
func TestFabGridSensitivity(t *testing.T) {
	s := orinSpec()
	taiwanC, _ := s.Standalone2D()
	s.FabCI = grid.MustIntensity(grid.Norway)
	cleanC, err := s.Standalone2D()
	if err != nil {
		t.Fatal(err)
	}
	if cleanC >= taiwanC {
		t.Errorf("clean-grid die %v should be cheaper than Taiwan-grid die %v",
			cleanC, taiwanC)
	}
	// Gas and material emissions do not scale with the grid, so the clean
	// die keeps a substantial floor.
	if cleanC.Kg() < 0.2*taiwanC.Kg() {
		t.Errorf("GPA+MPA floor violated: %v vs %v", cleanC, taiwanC)
	}
}
