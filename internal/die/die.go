// Package die implements the per-die embodied-carbon model of §3.2.1:
//
//	C_die = Σ_i C_wafer_i / DPW_i · 1/Y_i        (Eq. 4)
//	DPW from Eq. 5 (internal/geom)
//	C_wafer = (CI_emb·EPA + GPA + MPA) · A_wafer (Eq. 6)
//
// with the EPA/GPA/MPA decomposition into FEOL + per-BEOL-layer components
// from internal/tech, so a die with fewer metal layers is genuinely cheaper.
//
// The package also models monolithic-3D sequential manufacturing: an M3D
// "die" is a single footprint processed with one FEOL pass per tier (the
// later passes at a low-temperature sequential premium), an inter-layer
// dielectric per extra tier, and a defect-density multiplier reflecting the
// longer process flow.
package die

import (
	"fmt"

	"repro/internal/geom"
	"repro/internal/tech"
	"repro/internal/units"
	"repro/internal/yield"
)

// Spec describes one die (or one M3D footprint) to be manufactured.
type Spec struct {
	Node *tech.Node
	// Area is the full die area from Eq. 7 (gates + TSV + IO drivers).
	Area units.Area
	// BEOLLayers is the Eq. 10 metal-layer count for this die.
	BEOLLayers int
	// WaferArea defaults to a 300 mm wafer when zero.
	WaferArea units.Area
	// FabCI is the manufacturing grid's carbon intensity.
	FabCI units.CarbonIntensity

	// Tiers is 1 for ordinary dies; ≥2 selects M3D sequential processing.
	Tiers int
	// SeqFEOLPremium is the fractional FEOL cost of each additional
	// sequential tier (0.15 ⇒ tier 2 costs 15 % of a full FEOL pass on
	// top of the base pass). Only used when Tiers ≥ 2.
	SeqFEOLPremium float64
	// SeqILDShare is the inter-layer-dielectric cost per extra tier as a
	// fraction of the FEOL footprint cost. Only used when Tiers ≥ 2.
	SeqILDShare float64
	// SeqDefectMultiplier scales the node defect density per extra tier
	// (longer flow ⇒ more defect exposure). Only used when Tiers ≥ 2.
	SeqDefectMultiplier float64
}

func (s Spec) validate() error {
	if s.Node == nil {
		return fmt.Errorf("die: nil technology node")
	}
	if s.Area <= 0 {
		return fmt.Errorf("die: non-positive area %v", s.Area)
	}
	if s.BEOLLayers < 1 {
		return fmt.Errorf("die: BEOL layer count %d below 1", s.BEOLLayers)
	}
	if s.BEOLLayers > s.Node.MaxBEOL {
		return fmt.Errorf("die: %d BEOL layers exceeds the %d nm node's max %d",
			s.BEOLLayers, s.Node.ProcessNM, s.Node.MaxBEOL)
	}
	if s.FabCI <= 0 {
		return fmt.Errorf("die: non-positive fab carbon intensity %v", s.FabCI)
	}
	if s.Tiers < 0 || s.Tiers == 0 {
		// Zero means "unset"; normalise below instead of erroring.
	}
	if s.Tiers > 2 {
		return fmt.Errorf("die: sequential M3D supports 2 tiers, got %d", s.Tiers)
	}
	return nil
}

func (s Spec) wafer() units.Area {
	if s.WaferArea > 0 {
		return s.WaferArea
	}
	return geom.Wafer300
}

func (s Spec) tiers() int {
	if s.Tiers < 2 {
		return 1
	}
	return s.Tiers
}

// feolFactor is the FEOL cost multiplier: 1 for a plain die, and
// 1 + (tiers−1)·(premium + ILD share) for sequential M3D footprints.
func (s Spec) feolFactor() float64 {
	t := s.tiers()
	if t == 1 {
		return 1
	}
	return 1 + float64(t-1)*(s.SeqFEOLPremium+s.SeqILDShare)
}

// WaferCarbonPerArea returns Eq. 6 normalised per cm² of wafer for this
// die's layer count (and sequential options).
func (s Spec) WaferCarbonPerArea() (units.CarbonPerArea, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	n := s.Node
	f := s.feolFactor()
	layers := float64(s.BEOLLayers)
	epa := f*n.EPAFEOL.KWhPerCM2() + layers*n.EPAPerLayer.KWhPerCM2()
	gpa := f*n.GPAFEOL.KgPerCM2() + layers*n.GPAPerLayer.KgPerCM2()
	mpa := f*n.MPAFEOL.KgPerCM2() + layers*n.MPAPerLayer.KgPerCM2()
	return units.KgPerCM2(s.FabCI.KgPerKWh()*epa + gpa + mpa), nil
}

// WaferCarbon returns Eq. 6: the carbon footprint of one whole wafer
// processed for this die.
func (s Spec) WaferCarbon() (units.Carbon, error) {
	cpa, err := s.WaferCarbonPerArea()
	if err != nil {
		return 0, err
	}
	return cpa.Over(s.wafer()), nil
}

// DiePerWafer returns Eq. 5 for this die.
func (s Spec) DiePerWafer() (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	return geom.DiePerWafer(s.wafer(), s.Area)
}

// IntrinsicYield returns Eq. 15 for this die: the pre-stacking y_die used
// by Table 3's compositions. Sequential tiers raise the effective defect
// density.
func (s Spec) IntrinsicYield() (float64, error) {
	if err := s.validate(); err != nil {
		return 0, err
	}
	d0 := s.Node.DefectDensity
	if t := s.tiers(); t > 1 {
		m := s.SeqDefectMultiplier
		if m < 1 {
			m = 1
		}
		d0 *= 1 + float64(t-1)*(m-1)
	}
	return yield.Die(s.Area, d0, s.Node.ClusterAlpha)
}

// PerCandidateCarbon returns C_wafer/DPW — the manufacturing carbon
// attributable to one die site before any yield division.
func (s Spec) PerCandidateCarbon() (units.Carbon, error) {
	wc, err := s.WaferCarbon()
	if err != nil {
		return 0, err
	}
	dpw, err := s.DiePerWafer()
	if err != nil {
		return 0, err
	}
	return units.KilogramsCO2(wc.Kg() / dpw), nil
}

// CarbonPerGoodDie evaluates one term of Eq. 4: C_wafer/DPW divided by the
// effective yield Y (which the caller composes per Table 3; pass the
// intrinsic yield for a standalone 2D die).
func (s Spec) CarbonPerGoodDie(effectiveYield float64) (units.Carbon, error) {
	if effectiveYield <= 0 || effectiveYield > 1 {
		return 0, fmt.Errorf("die: effective yield %v outside (0,1]", effectiveYield)
	}
	c, err := s.PerCandidateCarbon()
	if err != nil {
		return 0, err
	}
	return units.KilogramsCO2(c.Kg() / effectiveYield), nil
}

// Standalone2D is the common 2D case: Eq. 4 with N = 1 and the intrinsic
// yield as divisor. It returns the carbon per good monolithic die.
func (s Spec) Standalone2D() (units.Carbon, error) {
	y, err := s.IntrinsicYield()
	if err != nil {
		return 0, err
	}
	return s.CarbonPerGoodDie(y)
}
