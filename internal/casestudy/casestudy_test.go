package casestudy

import (
	"math"
	"testing"

	"repro/internal/core"
	"repro/internal/ic"
	"repro/internal/metrics"
	"repro/internal/params"
	"repro/internal/split"
)

// Fig. 4(a): the published relations for the EPYC 7452 validation.
func TestFig4aRelations(t *testing.T) {
	res, err := RunFig4a(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	// "the LCA ... reports higher embodied emissions than 3D-Carbon and
	// ACT+."
	if res.LCA.Total.Kg() <= res.MCM.Total.Kg() {
		t.Errorf("LCA %v should exceed 3D-Carbon MCM %v", res.LCA.Total, res.MCM.Total)
	}
	if res.LCA.Total.Kg() <= res.ACTPlus.Total.Kg() {
		t.Errorf("LCA %v should exceed ACT+ %v", res.LCA.Total, res.ACTPlus.Total)
	}
	// "the discrepancy in embodied emissions between LCA and 3D-Carbon is
	// about 4.4%" (2D-adjusted mode).
	if res.TwoDAdjustedDelta > 0.06 {
		t.Errorf("2D-adjusted delta = %.1f%%, want ≈4.4%%", res.TwoDAdjustedDelta*100)
	}
	// "higher packaging carbon emission (3.47 kg) compared to ACT+'s fixed
	// 0.15 kg."
	if math.Abs(res.MCM.Packaging.Kg()-3.47) > 0.35 {
		t.Errorf("MCM packaging = %.2f kg, want ≈3.47", res.MCM.Packaging.Kg())
	}
	if math.Abs(res.ACTPlus.Packaging.Kg()-0.15) > 1e-9 {
		t.Errorf("ACT+ packaging = %v, want 0.15", res.ACTPlus.Packaging)
	}
}

// Fig. 4(b): the published relations for the Lakefield validation.
func TestFig4bRelations(t *testing.T) {
	res, err := RunFig4b(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	// GaBi's 14 nm substitution underestimates versus both 3D-Carbon and
	// ACT+.
	if res.GaBi.Total.Kg() >= res.D2W.Total.Kg() {
		t.Errorf("GaBi %v should be below 3D-Carbon D2W %v", res.GaBi.Total, res.D2W.Total)
	}
	if res.GaBi.Total.Kg() >= res.ACTPlus.Total.Kg() {
		t.Errorf("GaBi %v should be below ACT+ %v", res.GaBi.Total, res.ACTPlus.Total)
	}
	if !res.GaBi.Substituted {
		t.Error("GaBi must flag the 7 nm substitution")
	}
	// W2W wastes more good silicon than D2W.
	if res.W2W.Total.Kg() <= res.D2W.Total.Kg() {
		t.Errorf("W2W %v should exceed D2W %v", res.W2W.Total, res.D2W.Total)
	}
	// The published yields: D2W logic 89.3 %, memory 88.4 %; W2W 79.7 %.
	get := func(rep []core.DieReport, name string) core.DieReport {
		for _, d := range rep {
			if d.Name == name {
				return d
			}
		}
		t.Fatalf("die %q not found", name)
		return core.DieReport{}
	}
	logic := get(res.D2W.Dies, "compute")
	if math.Abs(logic.EffectiveYield-0.893) > 0.002 {
		t.Errorf("D2W logic yield = %.4f, want 0.893", logic.EffectiveYield)
	}
	mem := get(res.D2W.Dies, "base")
	if math.Abs(mem.EffectiveYield-0.884) > 0.002 {
		t.Errorf("D2W memory yield = %.4f, want 0.884", mem.EffectiveYield)
	}
	for _, d := range res.W2W.Dies {
		if math.Abs(d.EffectiveYield-0.797) > 0.002 {
			t.Errorf("W2W %s yield = %.4f, want 0.797", d.Name, d.EffectiveYield)
		}
	}
}

func TestFig5HomogeneousStructure(t *testing.T) {
	rows, err := RunFig5(core.Default(), split.HomogeneousStrategy)
	if err != nil {
		t.Fatal(err)
	}
	// 4 chips × 8 designs.
	if len(rows) != 32 {
		t.Fatalf("Fig 5 rows = %d, want 32", len(rows))
	}
	byKey := map[string]Fig5Row{}
	for _, r := range rows {
		byKey[r.Chip+"/"+string(r.Integration)] = r
	}

	// Paper: "For THOR, none of the four 2.5D ICs meet the necessary
	// bandwidth, rendering them invalid."
	for _, integ := range []ic.Integration{ic.MCM, ic.InFO, ic.EMIB, ic.SiInterposer} {
		if byKey["THOR/"+string(integ)].Valid {
			t.Errorf("THOR %s should be invalid", integ)
		}
	}
	// ORIN: MCM and InFO fail, EMIB and Si-interposer hold (the five
	// valid designs of Table 5).
	if byKey["ORIN/mcm"].Valid || byKey["ORIN/info"].Valid {
		t.Error("ORIN MCM/InFO should be bandwidth-invalid")
	}
	if !byKey["ORIN/emib"].Valid || !byKey["ORIN/si-interposer"].Valid {
		t.Error("ORIN EMIB/Si-interposer should be valid")
	}
	// Early chips: everything valid.
	for _, integ := range ic.Integrations() {
		if !byKey["PX2/"+string(integ)].Valid {
			t.Errorf("PX2 %s should be valid", integ)
		}
	}

	// Paper: "InFO and silicon-interposer 2.5D ICs increase embodied
	// carbons"; "Other 3D/2.5D designs constantly reduce/maintain the
	// embodied carbons."
	for _, chip := range []string{"PX2", "XAVIER", "ORIN"} {
		base := byKey[chip+"/2D"].Embodied
		if byKey[chip+"/info"].Embodied <= base {
			t.Errorf("%s InFO embodied should exceed 2D", chip)
		}
		if byKey[chip+"/si-interposer"].Embodied <= base {
			t.Errorf("%s Si-interposer embodied should exceed 2D", chip)
		}
		for _, integ := range []ic.Integration{ic.MCM, ic.EMIB, ic.MicroBump3D,
			ic.Hybrid3D, ic.Monolithic3D} {
			if byKey[chip+"/"+string(integ)].Embodied >= base*1.02 {
				t.Errorf("%s %s embodied should not exceed 2D", chip, integ)
			}
		}
	}

	// Paper: "Operational carbon emissions are higher for 2.5D ICs than
	// 2D/3D ICs."
	for _, chip := range []string{"PX2", "XAVIER", "ORIN", "THOR"} {
		op2d := byKey[chip+"/2D"].OperationalLifetime
		for _, integ := range []ic.Integration{ic.MCM, ic.InFO, ic.EMIB, ic.SiInterposer} {
			if byKey[chip+"/"+string(integ)].OperationalLifetime <= op2d {
				t.Errorf("%s %s operational should exceed 2D", chip, integ)
			}
		}
	}

	// Paper: "With the exponential growth of energy efficiency over time,
	// the operational carbon emissions decrease" across generations.
	ops := []float64{
		byKey["PX2/2D"].OperationalLifetime.Kg(),
		byKey["XAVIER/2D"].OperationalLifetime.Kg(),
		byKey["ORIN/2D"].OperationalLifetime.Kg(),
		byKey["THOR/2D"].OperationalLifetime.Kg(),
	}
	for i := 1; i < len(ops); i++ {
		if ops[i] >= ops[i-1] {
			t.Errorf("2D operational should fall across generations: %v", ops)
		}
	}
}

// The heterogeneous strategy saves less than the homogeneous one (Fig. 5b
// vs 5a) for the valid ORIN designs.
func TestHeterogeneousSavesLess(t *testing.T) {
	m := core.Default()
	homo, err := RunFig5(m, split.HomogeneousStrategy)
	if err != nil {
		t.Fatal(err)
	}
	hetero, err := RunFig5(m, split.HeterogeneousStrategy)
	if err != nil {
		t.Fatal(err)
	}
	pick := func(rows []Fig5Row, chip string, integ ic.Integration) Fig5Row {
		for _, r := range rows {
			if r.Chip == chip && r.Integration == integ {
				return r
			}
		}
		t.Fatalf("row %s/%s missing", chip, integ)
		return Fig5Row{}
	}
	for _, integ := range []ic.Integration{ic.Hybrid3D, ic.MicroBump3D, ic.Monolithic3D} {
		h := pick(homo, "ORIN", integ).Embodied.Kg()
		x := pick(hetero, "ORIN", integ).Embodied.Kg()
		if x <= h {
			t.Errorf("ORIN %s: heterogeneous embodied %v should exceed homogeneous %v",
				integ, x, h)
		}
	}
}

// Table 5: signs, orderings and decision verdicts against the paper.
func TestTable5Relations(t *testing.T) {
	rows, err := RunTable5(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("Table 5 rows = %d, want 5", len(rows))
	}
	byInteg := map[ic.Integration]Table5Row{}
	for _, r := range rows {
		byInteg[r.Integration] = r
	}

	// Embodied save ordering: M3D > Hybrid > Micro > EMIB > 0 > Si_int.
	m3d := byInteg[ic.Monolithic3D]
	hyb := byInteg[ic.Hybrid3D]
	mic := byInteg[ic.MicroBump3D]
	emib := byInteg[ic.EMIB]
	si := byInteg[ic.SiInterposer]
	if !(m3d.EmbodiedSave > hyb.EmbodiedSave &&
		hyb.EmbodiedSave > mic.EmbodiedSave &&
		mic.EmbodiedSave > emib.EmbodiedSave &&
		emib.EmbodiedSave > 0 && si.EmbodiedSave < 0) {
		t.Errorf("embodied save ordering violated: M3D %.3f, Hyb %.3f, Mic %.3f, EMIB %.3f, Si %.3f",
			m3d.EmbodiedSave, hyb.EmbodiedSave, mic.EmbodiedSave,
			emib.EmbodiedSave, si.EmbodiedSave)
	}
	// Paper magnitudes (±10 percentage points).
	paper := map[ic.Integration]struct{ emb, overall float64 }{
		ic.EMIB:         {0.2369, 0.065},
		ic.SiInterposer: {-0.0959, -0.0986},
		ic.MicroBump3D:  {0.2588, 0.0763},
		ic.Hybrid3D:     {0.3564, 0.2171},
		ic.Monolithic3D: {0.6553, 0.4103},
	}
	for integ, want := range paper {
		got := byInteg[integ]
		if math.Abs(got.EmbodiedSave-want.emb) > 0.10 {
			t.Errorf("%s embodied save = %.2f%%, paper %.2f%%",
				integ, got.EmbodiedSave*100, want.emb*100)
		}
		if math.Abs(got.OverallSave-want.overall) > 0.10 {
			t.Errorf("%s overall save = %.2f%%, paper %.2f%%",
				integ, got.OverallSave*100, want.overall*100)
		}
	}

	// Verdicts: hybrid/M3D always choosable; Si_int never; EMIB/micro
	// choosable within a horizon that covers the 10-year lifetime.
	if hyb.Tc.Verdict != metrics.AlwaysBetter || m3d.Tc.Verdict != metrics.AlwaysBetter {
		t.Error("hybrid and M3D should be always-choosable (paper: Tc > 0)")
	}
	if si.Tc.Verdict != metrics.NeverBetter {
		t.Error("Si-interposer Tc should be ∞")
	}
	if emib.Tc.Verdict != metrics.BetterUntil || !emib.Choose {
		t.Errorf("EMIB should be choosable within its horizon: %+v", emib.Tc)
	}
	if mic.Tc.Verdict != metrics.BetterUntil || !mic.Choose {
		t.Errorf("micro should be choosable within its horizon: %+v", mic.Tc)
	}
	// Replacing: only hybrid and M3D have finite horizons, both beyond
	// the 10-year lifetime — the paper advises against replacing.
	for _, r := range []Table5Row{emib, si, mic} {
		if r.Tr.Verdict != metrics.NeverBetter {
			t.Errorf("%s Tr should be ∞, got %+v", r.Integration, r.Tr)
		}
	}
	if hyb.Tr.Verdict != metrics.BetterAfter || hyb.Tr.Years < 75 {
		t.Errorf("hybrid Tr = %+v, paper >75 years", hyb.Tr)
	}
	if m3d.Tr.Verdict != metrics.BetterAfter || m3d.Tr.Years < 19 {
		t.Errorf("M3D Tr = %+v, paper >19 years", m3d.Tr)
	}
	if hyb.Replace || m3d.Replace {
		t.Error("no candidate should justify replacement within 10 years (§5.2)")
	}
}

func TestEPYCDesignValid(t *testing.T) {
	d := EPYC7452MCM()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(d.Dies) != 5 {
		t.Errorf("EPYC has %d dies, want 5", len(d.Dies))
	}
}

func TestLakefieldDesignValid(t *testing.T) {
	for _, flow := range []ic.BondFlow{ic.D2W, ic.W2W} {
		d := Lakefield(flow)
		if err := d.Validate(); err != nil {
			t.Fatalf("%s: %v", flow, err)
		}
		if d.PackageAreaMM2 != 144 {
			t.Errorf("Lakefield package = %v mm², want the 12×12 mm PoP", d.PackageAreaMM2)
		}
	}
}

// The LCA comparison baseline is profile-driven too: an lca overlay moves
// the GaBi-style bars of Fig. 4 through the model's LCA database, while
// the default run stays pinned.
func TestFig4LCAFollowsParams(t *testing.T) {
	base, err := RunFig4a(core.Default())
	if err != nil {
		t.Fatal(err)
	}
	ps, err := params.Overlay(params.Default(),
		[]byte(`{"version":"lcatest","lca":{"line_yield":0.8}}`))
	if err != nil {
		t.Fatal(err)
	}
	m, err := core.New(ps)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := RunFig4a(m)
	if err != nil {
		t.Fatal(err)
	}
	if mod.LCA.Silicon <= base.LCA.Silicon {
		t.Errorf("lower LCA line yield did not raise the LCA silicon price: %v vs %v",
			mod.LCA.Silicon, base.LCA.Silicon)
	}
	// The 3D-Carbon estimate itself does not consume the LCA section.
	if mod.MCM.Total != base.MCM.Total {
		t.Errorf("lca overlay moved the 3D-Carbon estimate: %v vs %v",
			mod.MCM.Total, base.MCM.Total)
	}
}
