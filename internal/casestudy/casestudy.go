// Package casestudy drives the paper's experiments: the Fig. 4 validations
// (EPYC 7452 and Lakefield) and the §5 NVIDIA DRIVE studies (Fig. 5 and
// Table 5). Each runner returns structured results that the CLI tools,
// benchmarks and EXPERIMENTS.md consume.
package casestudy

import (
	"context"
	"fmt"

	"repro/internal/act"
	"repro/internal/core"
	"repro/internal/design"
	"repro/internal/explore"
	"repro/internal/grid"
	"repro/internal/ic"
	"repro/internal/lca"
	"repro/internal/metrics"
	"repro/internal/split"
	"repro/internal/units"
	"repro/internal/workload"
)

// EPYC 7452 die complement (§4.1): four 7 nm CPU chiplets and one 14 nm IO
// die on an organic MCM.
const (
	epycCCDAreaMM2 = 74.0
	epycIODAreaMM2 = 416.0
)

// EPYC7452MCM returns the EPYC 7452 as a 3D-Carbon MCM design.
func EPYC7452MCM() *design.Design {
	dies := []design.Die{
		{Name: "ccd0", ProcessNM: 7, AreaMM2: epycCCDAreaMM2},
		{Name: "ccd1", ProcessNM: 7, AreaMM2: epycCCDAreaMM2},
		{Name: "ccd2", ProcessNM: 7, AreaMM2: epycCCDAreaMM2},
		{Name: "ccd3", ProcessNM: 7, AreaMM2: epycCCDAreaMM2},
		{Name: "iod", ProcessNM: 14, AreaMM2: epycIODAreaMM2},
	}
	return &design.Design{
		Name:        "epyc-7452",
		Integration: ic.MCM,
		Order:       ic.ChipLast,
		Dies:        dies,
		FabLocation: grid.Taiwan,
		UseLocation: grid.USA,
	}
}

func epycACTDies() []act.DieSpec {
	return []act.DieSpec{
		{ProcessNM: 7, Area: units.SquareMillimeters(epycCCDAreaMM2)},
		{ProcessNM: 7, Area: units.SquareMillimeters(epycCCDAreaMM2)},
		{ProcessNM: 7, Area: units.SquareMillimeters(epycCCDAreaMM2)},
		{ProcessNM: 7, Area: units.SquareMillimeters(epycCCDAreaMM2)},
		{ProcessNM: 14, Area: units.SquareMillimeters(epycIODAreaMM2)},
	}
}

func epycLCADies() []lca.DieSpec {
	return []lca.DieSpec{
		{ProcessNM: 7, Area: units.SquareMillimeters(epycCCDAreaMM2)},
		{ProcessNM: 7, Area: units.SquareMillimeters(epycCCDAreaMM2)},
		{ProcessNM: 7, Area: units.SquareMillimeters(epycCCDAreaMM2)},
		{ProcessNM: 7, Area: units.SquareMillimeters(epycCCDAreaMM2)},
		{ProcessNM: 14, Area: units.SquareMillimeters(epycIODAreaMM2)},
	}
}

// Fig4aResult compares the EPYC 7452 embodied-carbon estimates.
type Fig4aResult struct {
	// LCA is the GaBi-style product LCA (2D-monolithic view).
	LCA *lca.Report
	// ACTPlus is the re-implemented ACT+ estimate.
	ACTPlus *act.Report
	// MCM is the full 3D-Carbon MCM-aware estimate.
	MCM *core.EmbodiedReport
	// TwoDAdjusted is 3D-Carbon "adjusted for a 2D IC": each die priced
	// as a standalone 2D die plus one conventional 2D package.
	TwoDAdjusted units.Carbon
	// TwoDAdjustedDelta is |LCA − 2D-adjusted| / LCA (the paper: ≈4.4 %).
	TwoDAdjustedDelta float64
}

// RunFig4a reproduces Fig. 4(a).
func RunFig4a(m *core.Model) (*Fig4aResult, error) {
	d := EPYC7452MCM()
	mcm, err := m.Embodied(d)
	if err != nil {
		return nil, err
	}

	actPlus, err := act.Default().Embodied(ic.MCM, epycACTDies())
	if err != nil {
		return nil, err
	}

	// 2D-adjusted: dies as standalone 2D parts, one conventional package
	// over the summed silicon.
	var twoD units.Carbon
	var totalArea units.Area
	for _, die := range d.Dies {
		single := &design.Design{
			Name:        d.Name + "-2d-" + die.Name,
			Integration: ic.Mono2D,
			Dies:        []design.Die{die},
			FabLocation: d.FabLocation,
			UseLocation: d.UseLocation,
		}
		rep, err := m.Embodied(single)
		if err != nil {
			return nil, err
		}
		twoD += rep.Die
		totalArea += rep.Dies[0].Area
	}
	pkg, err := m.PackagingDB().For(ic.Mono2D)
	if err != nil {
		return nil, err
	}
	pkgArea, err := pkg.Model.Area(totalArea)
	if err != nil {
		return nil, err
	}
	twoD += pkg.CPA.Over(pkgArea)

	// GaBi-style LCA of the product: silicon + package by area, priced by
	// the model's LCA calibration so -params scenarios reach it.
	ref, err := m.LCADB().Product(epycLCADies(), pkgArea)
	if err != nil {
		return nil, err
	}

	res := &Fig4aResult{
		LCA:          ref,
		ACTPlus:      actPlus,
		MCM:          mcm,
		TwoDAdjusted: twoD,
	}
	res.TwoDAdjustedDelta = abs(ref.Total.Kg()-twoD.Kg()) / ref.Total.Kg()
	return res, nil
}

// Lakefield die complement (§4.2): a 7 nm compute die stacked on a 14 nm
// base die with micro-bumping F2F (Table 1).
const (
	lakefieldLogicAreaMM2 = 82.5
	lakefieldBaseAreaMM2  = 92.0
)

// Lakefield returns the Lakefield 3D design under the given bond flow.
func Lakefield(flow ic.BondFlow) *design.Design {
	return &design.Design{
		Name:        fmt.Sprintf("lakefield-%s", flow),
		Integration: ic.MicroBump3D,
		Stacking:    ic.F2F,
		Flow:        flow,
		Dies: []design.Die{
			{Name: "base", ProcessNM: 14, AreaMM2: lakefieldBaseAreaMM2, Memory: true},
			{Name: "compute", ProcessNM: 7, AreaMM2: lakefieldLogicAreaMM2},
		},
		FabLocation: grid.Taiwan,
		UseLocation: grid.USA,
		// Lakefield ships in a 12×12 mm package-on-package (ISSCC'20).
		PackageAreaMM2: 144,
	}
}

// Fig4bResult compares the Lakefield embodied-carbon estimates.
type Fig4bResult struct {
	// GaBi prices both dies at 14 nm (no 7 nm coverage) — the paper's
	// underestimation mechanism.
	GaBi *lca.Report
	// ACTPlus treats the stack as two 2D dies plus flat packaging.
	ACTPlus *act.Report
	// D2W and W2W are the 3D-Carbon estimates per bond flow.
	D2W *core.EmbodiedReport
	W2W *core.EmbodiedReport
}

// RunFig4b reproduces Fig. 4(b).
func RunFig4b(m *core.Model) (*Fig4bResult, error) {
	d2w, err := m.Embodied(Lakefield(ic.D2W))
	if err != nil {
		return nil, err
	}
	w2w, err := m.Embodied(Lakefield(ic.W2W))
	if err != nil {
		return nil, err
	}
	actPlus, err := act.Default().Embodied(ic.MicroBump3D, []act.DieSpec{
		{ProcessNM: 14, Area: units.SquareMillimeters(lakefieldBaseAreaMM2)},
		{ProcessNM: 7, Area: units.SquareMillimeters(lakefieldLogicAreaMM2)},
	})
	if err != nil {
		return nil, err
	}
	gabi, err := m.LCADB().Product([]lca.DieSpec{
		{ProcessNM: 14, Area: units.SquareMillimeters(lakefieldBaseAreaMM2)},
		{ProcessNM: 7, Area: units.SquareMillimeters(lakefieldLogicAreaMM2)},
	}, d2w.PackageArea)
	if err != nil {
		return nil, err
	}
	return &Fig4bResult{GaBi: gabi, ACTPlus: actPlus, D2W: d2w, W2W: w2w}, nil
}

// Fig5Row is one bar of Fig. 5: a chip × integration × strategy evaluation.
type Fig5Row struct {
	Chip        string
	Integration ic.Integration
	Strategy    split.Strategy

	Valid            bool
	ThroughputFactor float64
	RequiredBW       units.Bandwidth
	AchievedBW       units.Bandwidth

	Embodied            units.Carbon
	OperationalLifetime units.Carbon
	Total               units.Carbon
}

// RunFig5 reproduces Fig. 5(a) (homogeneous) or Fig. 5(b) (heterogeneous):
// every DRIVE chip under 2D plus all seven 3D/2.5D technologies.
func RunFig5(m *core.Model, strategy split.Strategy) ([]Fig5Row, error) {
	return RunFig5On(explore.New(m), strategy)
}

// RunFig5On runs Fig. 5 on a shared exploration engine: the chip ×
// technology grid fans out over the engine's worker pool, and an engine
// reused across both strategies answers the strategy-independent 2D bars
// from its memoization cache.
func RunFig5On(e *explore.Engine, strategy split.Strategy) ([]Fig5Row, error) {
	type meta struct {
		chip  workload.DriveChip
		integ ic.Integration
	}
	var cands []explore.Candidate
	var metas []meta
	for _, chip := range workload.DriveSeries() {
		w := chip.Workload()
		sc := split.Chip{Name: chip.Name, ProcessNM: chip.ProcessNM, Gates: chip.Gates()}
		for _, integ := range ic.Integrations() {
			d, err := split.Divide(sc, integ, strategy)
			if err != nil {
				return nil, err
			}
			cands = append(cands, explore.Candidate{
				ID:       chip.Name + "/" + string(integ),
				Design:   d,
				Workload: w,
				Eff:      chip.Efficiency,
			})
			metas = append(metas, meta{chip: chip, integ: integ})
		}
	}
	results, err := e.Evaluate(context.Background(), cands)
	if err != nil {
		return nil, err
	}
	rows := make([]Fig5Row, 0, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, fmt.Errorf("casestudy: %s/%s: %w", metas[i].chip.Name, metas[i].integ, r.Err)
		}
		tot := r.Report
		rows = append(rows, Fig5Row{
			Chip:                metas[i].chip.Name,
			Integration:         metas[i].integ,
			Strategy:            strategy,
			Valid:               tot.Operational.Valid,
			ThroughputFactor:    tot.Operational.ThroughputFactor,
			RequiredBW:          tot.Operational.Required,
			AchievedBW:          tot.Operational.Capacity,
			Embodied:            tot.Embodied.Total,
			OperationalLifetime: tot.Operational.LifetimeCarbon,
			Total:               tot.Total,
		})
	}
	return rows, nil
}

// Table5Technologies are the five bandwidth-valid ORIN candidates §5.2
// analyses.
func Table5Technologies() []ic.Integration {
	return []ic.Integration{ic.EMIB, ic.SiInterposer, ic.MicroBump3D,
		ic.Hybrid3D, ic.Monolithic3D}
}

// Table5Row is one column of Table 5.
type Table5Row struct {
	Integration ic.Integration

	EmbodiedSave float64 // Table 5 "Embodied carbon save ratio"
	OverallSave  float64 // Table 5 "Overall carbon save ratio"
	Tc           metrics.Horizon
	Tr           metrics.Horizon
	// Choose/Replace apply the horizons to the 10-year AV lifetime.
	Choose  bool
	Replace bool
}

// RunTable5 reproduces Table 5: the ORIN homogeneous candidates against the
// ORIN 2D baseline over the 10-year AV lifetime.
func RunTable5(m *core.Model) ([]Table5Row, error) {
	return RunTable5On(explore.New(m))
}

// RunTable5On runs Table 5 on a shared exploration engine. Every candidate
// carries the same 2D baseline, which the engine evaluates once.
func RunTable5On(e *explore.Engine) ([]Table5Row, error) {
	chip, err := workload.DriveChipByName("ORIN")
	if err != nil {
		return nil, err
	}
	w := chip.Workload()
	sc := split.Chip{Name: chip.Name, ProcessNM: chip.ProcessNM, Gates: chip.Gates()}

	base, err := split.Mono2D(sc)
	if err != nil {
		return nil, err
	}
	var cands []explore.Candidate
	for _, integ := range Table5Technologies() {
		d, err := split.Homogeneous(sc, integ)
		if err != nil {
			return nil, err
		}
		cands = append(cands, explore.Candidate{
			ID:       chip.Name + "/" + string(integ),
			Design:   d,
			Workload: w,
			Eff:      chip.Efficiency,
			Baseline: base,
		})
	}
	results, err := e.Evaluate(context.Background(), cands)
	if err != nil {
		return nil, err
	}
	rows := make([]Table5Row, 0, len(results))
	for i, r := range results {
		if r.Err != nil {
			return nil, r.Err
		}
		if r.Baseline == nil {
			return nil, fmt.Errorf("casestudy: %s: 2D baseline: %w", r.Candidate.ID, r.BaselineErr)
		}
		integ := Table5Technologies()[i]
		rows = append(rows, Table5Row{
			Integration:  integ,
			EmbodiedSave: r.EmbodiedSave,
			OverallSave:  r.OverallSave,
			Tc:           r.Tc,
			Tr:           r.Tr,
			Choose:       metrics.Recommend(r.Tc, w.LifetimeYears),
			Replace:      metrics.Recommend(r.Tr, w.LifetimeYears),
		})
	}
	return rows, nil
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
