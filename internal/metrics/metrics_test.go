package metrics

import (
	"math"
	"testing"

	"repro/internal/units"
)

func cmp(emb2d, embCand, op2d, opCand float64) Comparison {
	return Comparison{
		EmbodiedBaseline:  units.KilogramsCO2(emb2d),
		EmbodiedCandidate: units.KilogramsCO2(embCand),
		AnnualOpBaseline:  units.KilogramsCO2(op2d),
		AnnualOpCandidate: units.KilogramsCO2(opCand),
	}
}

func TestEmbodiedSaveRatio(t *testing.T) {
	c := cmp(20, 13, 1, 1)
	if got := c.EmbodiedSaveRatio(); math.Abs(got-0.35) > 1e-12 {
		t.Errorf("embodied save = %v, want 0.35", got)
	}
	// Negative saving (Si-interposer case).
	c = cmp(20, 22, 1, 1)
	if got := c.EmbodiedSaveRatio(); got >= 0 {
		t.Errorf("cost increase should give negative save, got %v", got)
	}
}

func TestOverallSaveRatio(t *testing.T) {
	// 2D: 20 + 10×2 = 40; candidate: 13 + 10×2 = 33 ⇒ 17.5 % saving.
	c := cmp(20, 13, 2, 2)
	if got := c.OverallSaveRatio(10); math.Abs(got-7.0/40.0) > 1e-12 {
		t.Errorf("overall save = %v, want %v", got, 7.0/40.0)
	}
	// Zero lifetime reduces to the embodied ratio.
	if got, want := c.OverallSaveRatio(0), c.EmbodiedSaveRatio(); math.Abs(got-want) > 1e-12 {
		t.Errorf("zero-lifetime overall %v != embodied %v", got, want)
	}
}

// The four quadrant cases of the choosing metric.
func TestChoosingQuadrants(t *testing.T) {
	// Saves both: always better (Table 5's hybrid/M3D "T_c > 0").
	h, err := Choosing(cmp(20, 13, 2, 1.9))
	if err != nil {
		t.Fatal(err)
	}
	if h.Verdict != AlwaysBetter || h.String() != ">0" {
		t.Errorf("both-save verdict = %+v, want always/>0", h)
	}
	if !Recommend(h, 10) {
		t.Error("always-better should be recommended")
	}

	// Loses both: never (Table 5's Si_int "∞").
	h, _ = Choosing(cmp(20, 22, 2, 2.2))
	if h.Verdict != NeverBetter || h.String() != "∞" || !h.Infinite() {
		t.Errorf("both-lose verdict = %+v, want never/∞", h)
	}
	if Recommend(h, 10) {
		t.Error("never-better should not be recommended")
	}

	// Saves embodied, pays operational (EMIB/micro): better until
	// ΔC_emb / ΔC_op_annual years.
	h, _ = Choosing(cmp(20, 15, 2.0, 2.25))
	if h.Verdict != BetterUntil {
		t.Fatalf("verdict = %v, want until", h.Verdict)
	}
	if want := 5.0 / 0.25; math.Abs(h.Years-want) > 1e-9 {
		t.Errorf("T_c = %v years, want %v", h.Years, want)
	}
	if !Recommend(h, 10) || Recommend(h, 30) {
		t.Error("until-horizon recommendation wrong around 20-year flip")
	}

	// Costs embodied, saves operational: better after.
	h, _ = Choosing(cmp(20, 24, 2.0, 1.5))
	if h.Verdict != BetterAfter {
		t.Fatalf("verdict = %v, want after", h.Verdict)
	}
	if want := 4.0 / 0.5; math.Abs(h.Years-want) > 1e-9 {
		t.Errorf("T_c = %v years, want %v", h.Years, want)
	}
	if Recommend(h, 5) || !Recommend(h, 10) {
		t.Error("after-horizon recommendation wrong around 8-year flip")
	}
}

func TestReplacing(t *testing.T) {
	// No operational saving: never replace (Table 5: EMIB/Si_int/Micro
	// T_r = ∞).
	h, err := Replacing(cmp(20, 15, 2.0, 2.25))
	if err != nil {
		t.Fatal(err)
	}
	if h.Verdict != NeverBetter {
		t.Errorf("no-op-saving replace verdict = %v, want never", h.Verdict)
	}

	// Operational saving: repay the candidate's full embodied carbon.
	h, _ = Replacing(cmp(20, 13, 2.0, 1.8))
	if h.Verdict != BetterAfter {
		t.Fatalf("verdict = %v, want after", h.Verdict)
	}
	if want := 13.0 / 0.2; math.Abs(h.Years-want) > 1e-9 {
		t.Errorf("T_r = %v years, want %v", h.Years, want)
	}
	// 65 years ≫ a 10-year lifetime: don't replace — the paper's §5.2
	// conclusion.
	if Recommend(h, 10) {
		t.Error("10-year lifetime should not justify a 65-year breakeven")
	}
}

// T_r always exceeds T_c when both are finite: replacing must repay the
// full candidate embodied cost, choosing only the difference.
func TestReplacingHarderThanChoosing(t *testing.T) {
	c := cmp(20, 24, 2.0, 1.5)
	hc, _ := Choosing(c)
	hr, _ := Replacing(c)
	if hr.Years <= hc.Years {
		t.Errorf("T_r %v should exceed T_c %v", hr.Years, hc.Years)
	}
}

func TestValidation(t *testing.T) {
	if _, err := Choosing(cmp(0, 10, 1, 1)); err == nil {
		t.Error("zero baseline embodied should error")
	}
	if _, err := Replacing(cmp(10, 0, 1, 1)); err == nil {
		t.Error("zero candidate embodied should error")
	}
	bad := cmp(10, 10, 1, 1)
	bad.AnnualOpBaseline = units.KilogramsCO2(-1)
	if _, err := Choosing(bad); err == nil {
		t.Error("negative operational should error")
	}
}

func TestHorizonStrings(t *testing.T) {
	cases := []struct {
		h    Horizon
		want string
	}{
		{Horizon{Verdict: AlwaysBetter}, ">0"},
		{Horizon{Verdict: NeverBetter}, "∞"},
		{Horizon{Verdict: BetterUntil, Years: 21.9}, "<21.9 yr"},
		{Horizon{Verdict: BetterAfter, Years: 75.2}, ">75.2 yr"},
	}
	for _, c := range cases {
		if got := c.h.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}
