// Package metrics implements the sustainable decision-making metrics of
// §2.2.2 (Eq. 2): the indifference point T_c for *choosing* a 3D/2.5D IC
// over a 2D IC, and the breakeven time T_r for *replacing* an
// already-manufactured 2D IC, both compared against the device's remaining
// lifetime.
//
// Working in annual operational carbon (CI_use · P · T_active per year)
// instead of raw power folds the use-grid intensity and duty cycle into the
// comparison, which is how the paper's 10-year AV lifetime is applied.
package metrics

import (
	"fmt"
	"math"

	"repro/internal/units"
)

// Verdict classifies a comparison outcome.
type Verdict string

const (
	// AlwaysBetter: the candidate wins on embodied and operational carbon;
	// any lifetime favors it (the paper reports these as "T > 0").
	AlwaysBetter Verdict = "always"
	// BetterUntil: the candidate saves embodied carbon but pays more
	// operational carbon; it wins for lifetimes below the horizon.
	BetterUntil Verdict = "until"
	// BetterAfter: the candidate costs more embodied carbon but saves
	// operational carbon; it wins for lifetimes beyond the horizon.
	BetterAfter Verdict = "after"
	// NeverBetter: the candidate loses on both axes (the paper's "∞").
	NeverBetter Verdict = "never"
)

// Comparison holds the carbon profile of a candidate (3D/2.5D) design
// against its 2D baseline.
type Comparison struct {
	// Baseline2D and Candidate embodied carbon.
	EmbodiedBaseline  units.Carbon
	EmbodiedCandidate units.Carbon
	// Annual operational carbon of each design under the fixed workload.
	AnnualOpBaseline  units.Carbon
	AnnualOpCandidate units.Carbon
}

func (c Comparison) validate() error {
	if c.EmbodiedBaseline <= 0 || c.EmbodiedCandidate <= 0 {
		return fmt.Errorf("metrics: non-positive embodied carbon (%v, %v)",
			c.EmbodiedBaseline, c.EmbodiedCandidate)
	}
	if c.AnnualOpBaseline < 0 || c.AnnualOpCandidate < 0 {
		return fmt.Errorf("metrics: negative operational carbon (%v, %v)",
			c.AnnualOpBaseline, c.AnnualOpCandidate)
	}
	return nil
}

// EmbodiedSaveRatio is Table 5's "embodied carbon save ratio":
// 1 − C_cand/C_2D.
func (c Comparison) EmbodiedSaveRatio() float64 {
	return 1 - c.EmbodiedCandidate.Kg()/c.EmbodiedBaseline.Kg()
}

// OverallSaveRatio is Table 5's "overall carbon save ratio" over a device
// lifetime.
func (c Comparison) OverallSaveRatio(lifetimeYears float64) float64 {
	base := c.EmbodiedBaseline.Kg() + c.AnnualOpBaseline.Kg()*lifetimeYears
	cand := c.EmbodiedCandidate.Kg() + c.AnnualOpCandidate.Kg()*lifetimeYears
	return 1 - cand/base
}

// Horizon is a decision metric: a verdict plus the year horizon where the
// preference flips (NaN for always/never).
type Horizon struct {
	Verdict Verdict
	Years   float64
}

// Infinite reports whether the metric is the paper's "∞" (never better).
func (h Horizon) Infinite() bool { return h.Verdict == NeverBetter }

// String renders the horizon the way Table 5 does.
func (h Horizon) String() string {
	switch h.Verdict {
	case AlwaysBetter:
		return ">0"
	case NeverBetter:
		return "∞"
	case BetterUntil:
		return fmt.Sprintf("<%.1f yr", h.Years)
	case BetterAfter:
		return fmt.Sprintf(">%.1f yr", h.Years)
	}
	return "?"
}

// Choosing evaluates the T_c metric of Eq. 2: when building a new system,
// for which lifetimes is the candidate the lower-carbon choice?
//
//	T_c = (C_emb_cand − C_emb_2D) / (annual op 2D − annual op cand)
func Choosing(c Comparison) (Horizon, error) {
	if err := c.validate(); err != nil {
		return Horizon{}, err
	}
	dEmb := c.EmbodiedCandidate.Kg() - c.EmbodiedBaseline.Kg()    // <0: candidate saves
	dOpSave := c.AnnualOpBaseline.Kg() - c.AnnualOpCandidate.Kg() // >0: candidate saves
	switch {
	case dEmb <= 0 && dOpSave >= 0:
		return Horizon{Verdict: AlwaysBetter, Years: math.NaN()}, nil
	case dEmb > 0 && dOpSave <= 0:
		return Horizon{Verdict: NeverBetter, Years: math.NaN()}, nil
	case dEmb <= 0 && dOpSave < 0:
		// Saves embodied, pays operational: good until the operational
		// penalty eats the embodied saving.
		return Horizon{Verdict: BetterUntil, Years: dEmb / dOpSave}, nil
	default:
		// Costs embodied, saves operational: good after the operational
		// savings repay the embodied premium.
		return Horizon{Verdict: BetterAfter, Years: dEmb / dOpSave}, nil
	}
}

// Replacing evaluates the T_r metric of Eq. 2: the 2D IC already exists
// (its embodied carbon is sunk); replacing it spends the candidate's full
// embodied carbon, repaid only by operational savings.
//
//	T_r = C_emb_cand / (annual op 2D − annual op cand)
func Replacing(c Comparison) (Horizon, error) {
	if err := c.validate(); err != nil {
		return Horizon{}, err
	}
	dOpSave := c.AnnualOpBaseline.Kg() - c.AnnualOpCandidate.Kg()
	if dOpSave <= 0 {
		return Horizon{Verdict: NeverBetter, Years: math.NaN()}, nil
	}
	return Horizon{Verdict: BetterAfter, Years: c.EmbodiedCandidate.Kg() / dOpSave}, nil
}

// Recommend applies a horizon to a device lifetime: should the candidate be
// chosen (or the 2D replaced) given T_life?
func Recommend(h Horizon, lifetimeYears float64) bool {
	switch h.Verdict {
	case AlwaysBetter:
		return true
	case NeverBetter:
		return false
	case BetterUntil:
		return lifetimeYears <= h.Years
	case BetterAfter:
		return lifetimeYears >= h.Years
	}
	return false
}
