// Package ic defines the integration-technology taxonomy of the paper's
// Table 1: the 3D and 2.5D integration styles, die-stacking orientations
// (F2F/F2B), bonding flows (D2W/W2W), bonding methods and 2.5D attach
// orders. It is the shared vocabulary of every model package and carries no
// model logic of its own.
package ic

import "fmt"

// Integration is the integration technology of a design (Table 1 plus the
// 2D monolithic baseline).
type Integration string

const (
	// Mono2D is the 2D monolithic baseline design.
	Mono2D Integration = "2D"

	// 3D integration technologies (§2.1.1).
	MicroBump3D  Integration = "micro-bump-3d" // micron-level solder balls
	Hybrid3D     Integration = "hybrid-3d"     // bond pads through metal layers
	Monolithic3D Integration = "m3d"           // sequential tiers with MIVs

	// 2.5D integration technologies (§2.1.2).
	MCM          Integration = "mcm"           // organic package substrate
	InFO         Integration = "info"          // fan-out RDL substrate
	EMIB         Integration = "emib"          // embedded silicon bridge
	SiInterposer Integration = "si-interposer" // full silicon interposer
)

// Integrations lists every integration technology, 2D first, in the order
// the paper's figures use.
func Integrations() []Integration {
	return []Integration{Mono2D, MCM, InFO, EMIB, SiInterposer,
		MicroBump3D, Hybrid3D, Monolithic3D}
}

// Is3D reports whether the technology stacks dies vertically.
func (i Integration) Is3D() bool {
	switch i {
	case MicroBump3D, Hybrid3D, Monolithic3D:
		return true
	}
	return false
}

// Is25D reports whether the technology places dies side by side on a
// substrate.
func (i Integration) Is25D() bool {
	switch i {
	case MCM, InFO, EMIB, SiInterposer:
		return true
	}
	return false
}

// HasInterposer reports whether the technology manufactures an extra
// substrate (RDL, bridge or interposer) whose carbon Eq. 13/14 model.
// MCM routes on the organic package substrate itself, which the packaging
// model already covers.
func (i Integration) HasInterposer() bool {
	switch i {
	case InFO, EMIB, SiInterposer:
		return true
	}
	return false
}

// Valid reports whether i names a known integration technology.
func (i Integration) Valid() bool {
	for _, k := range Integrations() {
		if i == k {
			return true
		}
	}
	return false
}

func (i Integration) String() string { return string(i) }

// DisplayName returns the label used in the paper's figures.
func (i Integration) DisplayName() string {
	switch i {
	case Mono2D:
		return "2D"
	case MicroBump3D:
		return "Micro"
	case Hybrid3D:
		return "Hybrid"
	case Monolithic3D:
		return "M3D"
	case MCM:
		return "MCM"
	case InFO:
		return "InFO"
	case EMIB:
		return "EMIB"
	case SiInterposer:
		return "Si_int"
	}
	return string(i)
}

// Stacking is the die-face orientation of a 3D stack (Table 1).
type Stacking string

const (
	F2F Stacking = "f2f" // face-to-face: two dies, bond pads between metals
	F2B Stacking = "f2b" // face-to-back: TSVs through the upper die's bulk
)

func (s Stacking) Valid() bool { return s == F2F || s == F2B }

func (s Stacking) String() string { return string(s) }

// MaxTiers returns the maximum number of stacked dies Table 1 allows for a
// 3D technology with this stacking (F2F tops out at two dies; F2B stacks
// arbitrarily; M3D is two tiers in the block-level style the paper models).
func (s Stacking) MaxTiers(integration Integration) int {
	if integration == Monolithic3D {
		return 2
	}
	if s == F2F {
		return 2
	}
	return 16 // practical F2B ceiling; HBM-class stacks
}

// BondFlow selects die-to-wafer or wafer-to-wafer assembly (Table 1).
type BondFlow string

const (
	D2W BondFlow = "d2w" // die-to-wafer: known-good dies, per-bond risk
	W2W BondFlow = "w2w" // wafer-to-wafer: no pre-bond cull, shared fate
)

func (f BondFlow) Valid() bool { return f == D2W || f == W2W }

func (f BondFlow) String() string { return string(f) }

// BondMethod is the physical bonding technology (§3.2.2).
type BondMethod string

const (
	C4Bump     BondMethod = "c4"     // flip-chip bumps (2.5D die attach)
	MicroBump  BondMethod = "micro"  // micro-bumping 3D
	HybridBond BondMethod = "hybrid" // Cu-Cu hybrid bonding
)

func (m BondMethod) Valid() bool {
	return m == C4Bump || m == MicroBump || m == HybridBond
}

func (m BondMethod) String() string { return string(m) }

// BondMethodFor returns the bonding method each integration technology uses
// to attach its dies.
func BondMethodFor(i Integration) (BondMethod, error) {
	switch i {
	case MicroBump3D:
		return MicroBump, nil
	case Hybrid3D:
		return HybridBond, nil
	case MCM, InFO, EMIB, SiInterposer:
		return C4Bump, nil
	case Monolithic3D, Mono2D:
		return "", fmt.Errorf("ic: %s has no die-bonding step", i)
	}
	return "", fmt.Errorf("ic: unknown integration %q", i)
}

// AttachOrder selects the 2.5D assembly sequence (chip-first vs chip-last,
// §2.1.2 InFO; Table 3's 2.5D yield rows).
type AttachOrder string

const (
	ChipFirst AttachOrder = "chip-first"
	ChipLast  AttachOrder = "chip-last"
)

func (o AttachOrder) Valid() bool { return o == ChipFirst || o == ChipLast }

func (o AttachOrder) String() string { return string(o) }
