package ic

import "testing"

// Table 1 catalogue: the taxonomy must cover exactly the three 3D and four
// 2.5D technologies the paper studies, plus the 2D baseline.
func TestTable1Catalogue(t *testing.T) {
	all := Integrations()
	if len(all) != 8 {
		t.Fatalf("Integrations() = %d entries, want 8", len(all))
	}
	var n3d, n25d, n2d int
	for _, i := range all {
		if !i.Valid() {
			t.Errorf("%s reported invalid", i)
		}
		switch {
		case i.Is3D():
			n3d++
		case i.Is25D():
			n25d++
		default:
			n2d++
		}
	}
	if n3d != 3 || n25d != 4 || n2d != 1 {
		t.Errorf("taxonomy split 3D=%d 2.5D=%d 2D=%d, want 3/4/1", n3d, n25d, n2d)
	}
}

func TestIs3DIs25DDisjoint(t *testing.T) {
	for _, i := range Integrations() {
		if i.Is3D() && i.Is25D() {
			t.Errorf("%s claims to be both 3D and 2.5D", i)
		}
	}
}

func TestHasInterposer(t *testing.T) {
	want := map[Integration]bool{
		Mono2D: false, MCM: false, InFO: true, EMIB: true,
		SiInterposer: true, MicroBump3D: false, Hybrid3D: false,
		Monolithic3D: false,
	}
	for i, w := range want {
		if got := i.HasInterposer(); got != w {
			t.Errorf("%s.HasInterposer() = %v, want %v", i, got, w)
		}
	}
}

func TestValidRejectsUnknown(t *testing.T) {
	if Integration("4d-hypercube").Valid() {
		t.Error("unknown integration reported valid")
	}
	if Stacking("sideways").Valid() {
		t.Error("unknown stacking reported valid")
	}
	if BondFlow("d2d").Valid() {
		t.Error("unknown bond flow reported valid")
	}
	if BondMethod("glue").Valid() {
		t.Error("unknown bond method reported valid")
	}
	if AttachOrder("chip-middle").Valid() {
		t.Error("unknown attach order reported valid")
	}
}

// Table 1: F2F stacking supports at most 2 dies; F2B supports ≥2; M3D is
// two tiers in the block-level style modeled.
func TestMaxTiers(t *testing.T) {
	if got := F2F.MaxTiers(Hybrid3D); got != 2 {
		t.Errorf("F2F hybrid max tiers = %d, want 2", got)
	}
	if got := F2B.MaxTiers(MicroBump3D); got < 2 {
		t.Errorf("F2B micro max tiers = %d, want >= 2", got)
	}
	if got := F2B.MaxTiers(Monolithic3D); got != 2 {
		t.Errorf("M3D max tiers = %d, want 2", got)
	}
}

func TestBondMethodFor(t *testing.T) {
	cases := []struct {
		in      Integration
		want    BondMethod
		wantErr bool
	}{
		{MicroBump3D, MicroBump, false},
		{Hybrid3D, HybridBond, false},
		{MCM, C4Bump, false},
		{InFO, C4Bump, false},
		{EMIB, C4Bump, false},
		{SiInterposer, C4Bump, false},
		{Monolithic3D, "", true},
		{Mono2D, "", true},
	}
	for _, c := range cases {
		got, err := BondMethodFor(c.in)
		if (err != nil) != c.wantErr {
			t.Errorf("BondMethodFor(%s) err = %v, wantErr %v", c.in, err, c.wantErr)
			continue
		}
		if !c.wantErr && got != c.want {
			t.Errorf("BondMethodFor(%s) = %s, want %s", c.in, got, c.want)
		}
	}
}

func TestDisplayNames(t *testing.T) {
	want := map[Integration]string{
		Mono2D: "2D", MCM: "MCM", InFO: "InFO", EMIB: "EMIB",
		SiInterposer: "Si_int", MicroBump3D: "Micro", Hybrid3D: "Hybrid",
		Monolithic3D: "M3D",
	}
	for i, w := range want {
		if got := i.DisplayName(); got != w {
			t.Errorf("%s.DisplayName() = %q, want %q", i, got, w)
		}
	}
}
