// Package power implements the operational model of §3.3:
//
//	C_operational = Σ_k CI_use · P_app_k · T_app_k       (Eq. 16)
//	P_app = Σ_i (Th_app / Eff_die_i + P_IO_i)            (Eq. 17)
//
// The die power follows the paper's fixed-throughput approach: the design
// must deliver the application throughput, so compute power is Th/Eff with
// Eff either user-supplied or taken from surveyed parameters (Table 4 for
// the DRIVE case studies). Third-party estimators plug in through the Model
// interface.
//
// I/O interface power is charged to 2.5D and micro-bump-3D designs (§3.3).
// The default model prices the *utilized* cross-interface bandwidth:
// P_IO = κ · E_bit · BW_used with κ = 4 covering TX+RX circuitry on both
// dies and request+response traffic. Eq. 17's pitch-count form
// (P_per_pitch · L_edge · D_pitch · N_BEOL) is provided as PitchCountIO for
// sensitivity studies.
//
// The operational constants (κ, the per-technology wire-saving fractions)
// are instance-based: a DB is built from a serializable Params value against
// an interface catalogue, so scenario profiles can override them. The
// package-level functions remain as conveniences over the default DB.
package power

import (
	"fmt"
	"math"

	"repro/internal/bandwidth"
	"repro/internal/ic"
	"repro/internal/units"
)

// Model is the plug-in interface for operational power estimators (the
// paper integrates tools like McPAT-Monolithic here). DiePower returns the
// compute power one die draws to sustain its share of the application
// throughput.
type Model interface {
	DiePower(th units.Throughput, eff units.Efficiency) (units.Power, error)
}

// SurveyedEfficiency is the paper's default: P = Th / Eff with surveyed
// energy-efficiency parameters.
type SurveyedEfficiency struct{}

// DiePower implements Model.
func (SurveyedEfficiency) DiePower(th units.Throughput, eff units.Efficiency) (units.Power, error) {
	if th <= 0 {
		return 0, fmt.Errorf("power: non-positive throughput %v", th)
	}
	if eff <= 0 {
		return 0, fmt.Errorf("power: non-positive efficiency %v", eff)
	}
	return eff.PowerFor(th), nil
}

// DefaultIOKappa is the utilized-bandwidth I/O power multiplier: TX and RX
// circuits on both sides of the link, for both traffic directions.
const DefaultIOKappa = 4.0

// Params is the serializable operational-power characterisation. It is one
// section of the params.Set profile format; WireSavings overlays merge per
// technology.
type Params struct {
	// IOKappa is the utilized-bandwidth I/O power multiplier.
	IOKappa float64 `json:"io_kappa"`
	// WireSavings is the fractional die-power saving from shortened
	// interconnect per 3D technology (the paper's "operational carbon
	// benefits from shorter interconnect lengths"). Values follow the PPA
	// studies the paper cites (Kim et al. DAC'21): monolithic 3D saves the
	// most, hybrid bonding a solid fraction, micro-bumping almost nothing
	// (coarse bumps barely shorten global nets). 2D and 2.5D see no saving.
	WireSavings map[ic.Integration]float64 `json:"wire_savings"`
}

// DefaultParams returns the calibrated operational constants.
func DefaultParams() Params {
	return Params{
		IOKappa: DefaultIOKappa,
		WireSavings: map[ic.Integration]float64{
			ic.Monolithic3D: 0.14,
			ic.Hybrid3D:     0.06,
			ic.MicroBump3D:  0.005,
		},
	}
}

// Validate rejects non-finite or out-of-range operational constants.
func (p Params) Validate() error {
	if math.IsNaN(p.IOKappa) || math.IsInf(p.IOKappa, 0) || p.IOKappa <= 0 {
		return fmt.Errorf("power: I/O kappa %v invalid", p.IOKappa)
	}
	for integ, v := range p.WireSavings {
		if !integ.Valid() {
			return fmt.Errorf("power: wire saving for unknown technology %q", integ)
		}
		if math.IsNaN(v) || v < 0 || v >= 1 {
			return fmt.Errorf("power: %s wire saving %v outside [0,1)", integ, v)
		}
	}
	return nil
}

// DB is an instance of the operational-power characterisation, resolved
// against an interface catalogue. Construct with NewDB (or use Default); a
// DB is immutable and safe for concurrent use.
type DB struct {
	p  Params
	bw *bandwidth.DB
}

// NewDB validates the params and binds them to the given interface
// catalogue (nil means bandwidth.Default()).
func NewDB(p Params, bw *bandwidth.DB) (*DB, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if bw == nil {
		bw = bandwidth.Default()
	}
	return &DB{p: p, bw: bw}, nil
}

var defaultDB = mustNewDB(DefaultParams())

func mustNewDB(p Params) *DB {
	db, err := NewDB(p, nil)
	if err != nil {
		panic(err)
	}
	return db
}

// Default returns the calibrated default characterisation.
func Default() *DB { return defaultDB }

// IOKappa returns the configured utilized-bandwidth multiplier.
func (db *DB) IOKappa() float64 { return db.p.IOKappa }

// WireSaving returns the fractional die-power saving for a technology
// (0 for technologies without a configured saving).
func (db *DB) WireSaving(i ic.Integration) float64 { return db.p.WireSavings[i] }

// NeedsIOPower reports whether §3.3 charges interface power to a
// technology: "For 2.5D ICs and Micro-bumping 3D ICs, the I/O power should
// be included."
func NeedsIOPower(i ic.Integration) bool {
	return i.Is25D() || i == ic.MicroBump3D
}

// InterfacePower prices the utilized die-to-die bandwidth of a design:
// P_IO = κ · E_bit · BW_used.
func (db *DB) InterfacePower(i ic.Integration, used units.Bandwidth, kappa float64) (units.Power, error) {
	if !NeedsIOPower(i) {
		return 0, nil
	}
	if used < 0 {
		return 0, fmt.Errorf("power: negative utilized bandwidth %v", used)
	}
	if kappa <= 0 {
		return 0, fmt.Errorf("power: non-positive kappa %v", kappa)
	}
	spec, err := db.bw.SpecFor(i)
	if err != nil {
		return 0, err
	}
	return units.Watts(kappa * spec.EnergyPerBit.At(used).W()), nil
}

// PitchCountIO is Eq. 17's literal form: P_IO = P_per_pitch · N_pitch with
// N_pitch = L_edge · D_pitch · N_BEOL. P_per_pitch is the full-rate power of
// one interface pitch (E_bit · data-rate). It prices the provisioned
// interface rather than its utilization and therefore upper-bounds
// InterfacePower.
func (db *DB) PitchCountIO(i ic.Integration, edge units.Length, nBEOL int) (units.Power, error) {
	if !NeedsIOPower(i) {
		return 0, nil
	}
	if edge <= 0 {
		return 0, fmt.Errorf("power: non-positive edge %v", edge)
	}
	if nBEOL < 1 {
		return 0, fmt.Errorf("power: BEOL layer count %d below 1", nBEOL)
	}
	spec, err := db.bw.SpecFor(i)
	if err != nil {
		return 0, err
	}
	density := spec.IOPerMMPerLayer
	if density == 0 {
		// Micro-bump 3D: convert the area pitch to an equivalent
		// shoreline density (one bump row per pitch).
		density = 1 / spec.Pitch.MM()
	}
	nPitch := edge.MM() * density * float64(nBEOL)
	perPitch := spec.EnergyPerBit.At(spec.DataRate)
	return units.Watts(nPitch * perPitch.W()), nil
}

// InterfacePower prices utilized bandwidth with the default catalogue.
func InterfacePower(i ic.Integration, used units.Bandwidth, kappa float64) (units.Power, error) {
	return defaultDB.InterfacePower(i, used, kappa)
}

// PitchCountIO evaluates Eq. 17's pitch-count form with the default
// catalogue.
func PitchCountIO(i ic.Integration, edge units.Length, nBEOL int) (units.Power, error) {
	return defaultDB.PitchCountIO(i, edge, nBEOL)
}

// WireSaving returns the default characterisation's fractional die-power
// saving for a technology.
func WireSaving(i ic.Integration) float64 { return defaultDB.WireSaving(i) }

// Operational evaluates Eq. 16 for one application phase: carbon from
// drawing p for duration t on the use grid.
func Operational(ci units.CarbonIntensity, p units.Power, t units.Time) (units.Carbon, error) {
	if ci <= 0 {
		return 0, fmt.Errorf("power: non-positive use carbon intensity %v", ci)
	}
	if p < 0 {
		return 0, fmt.Errorf("power: negative power %v", p)
	}
	if t < 0 {
		return 0, fmt.Errorf("power: negative time %v", t)
	}
	return ci.Emit(p.Over(t)), nil
}
