package power

import (
	"math"
	"testing"

	"repro/internal/ic"
	"repro/internal/units"
)

func TestSurveyedEfficiency(t *testing.T) {
	m := SurveyedEfficiency{}
	p, err := m.DiePower(units.TOPS(254), units.TOPSPerWatt(2.74))
	if err != nil {
		t.Fatal(err)
	}
	if want := 254.0 / 2.74; math.Abs(p.W()-want) > 1e-9 {
		t.Errorf("ORIN power = %v, want %v W", p.W(), want)
	}
	if _, err := m.DiePower(0, units.TOPSPerWatt(1)); err == nil {
		t.Error("zero throughput should error")
	}
	if _, err := m.DiePower(units.TOPS(1), 0); err == nil {
		t.Error("zero efficiency should error")
	}
}

var _ Model = SurveyedEfficiency{}

// §3.3: IO power applies to 2.5D and micro-bump 3D only.
func TestNeedsIOPower(t *testing.T) {
	want := map[ic.Integration]bool{
		ic.Mono2D: false, ic.MCM: true, ic.InFO: true, ic.EMIB: true,
		ic.SiInterposer: true, ic.MicroBump3D: true, ic.Hybrid3D: false,
		ic.Monolithic3D: false,
	}
	for i, w := range want {
		if got := NeedsIOPower(i); got != w {
			t.Errorf("NeedsIOPower(%s) = %v, want %v", i, got, w)
		}
	}
}

func TestInterfacePowerKnownValue(t *testing.T) {
	// EMIB at 0.3 TB/s utilized: 4 × 150 fJ/bit × 2.4e12 bit/s = 1.44 W.
	p, err := InterfacePower(ic.EMIB, units.TerabytesPerSecond(0.3), DefaultIOKappa)
	if err != nil {
		t.Fatal(err)
	}
	if want := 4 * 150e-15 * 2.4e12; math.Abs(p.W()-want) > 1e-9 {
		t.Errorf("EMIB IO power = %v, want %v W", p.W(), want)
	}
}

func TestInterfacePowerExemptTechnologies(t *testing.T) {
	for _, i := range []ic.Integration{ic.Mono2D, ic.Hybrid3D, ic.Monolithic3D} {
		p, err := InterfacePower(i, units.TerabytesPerSecond(1), DefaultIOKappa)
		if err != nil {
			t.Fatalf("%s: %v", i, err)
		}
		if p != 0 {
			t.Errorf("%s should pay no IO power, got %v", i, p)
		}
	}
}

func TestInterfacePowerErrors(t *testing.T) {
	if _, err := InterfacePower(ic.EMIB, -1, DefaultIOKappa); err == nil {
		t.Error("negative bandwidth should error")
	}
	if _, err := InterfacePower(ic.EMIB, units.TerabytesPerSecond(1), 0); err == nil {
		t.Error("zero kappa should error")
	}
}

// MCM's 2 pJ/bit SerDes must cost more IO power than the interposer's
// 120 fJ/bit at equal utilization.
func TestIOPowerOrdering(t *testing.T) {
	bw := units.TerabytesPerSecond(0.3)
	mcm, _ := InterfacePower(ic.MCM, bw, DefaultIOKappa)
	si, _ := InterfacePower(ic.SiInterposer, bw, DefaultIOKappa)
	if mcm <= si {
		t.Errorf("MCM IO power %v should exceed Si-interposer %v", mcm, si)
	}
}

func TestPitchCountIO(t *testing.T) {
	// Eq. 17's literal form for EMIB: 15 mm edge, 350 IO/mm, 11 layers.
	p, err := PitchCountIO(ic.EMIB, units.Millimeters(15), 11)
	if err != nil {
		t.Fatal(err)
	}
	perPitch := 150e-15 * 3.4e9
	want := 15.0 * 350 * 11 * perPitch
	if math.Abs(p.W()-want) > 1e-9*want {
		t.Errorf("pitch-count IO power = %v, want %v W", p.W(), want)
	}
	// Micro-bump 3D uses the pitch-derived shoreline density.
	p, err = PitchCountIO(ic.MicroBump3D, units.Millimeters(15), 11)
	if err != nil {
		t.Fatal(err)
	}
	if p <= 0 {
		t.Errorf("micro-bump pitch-count power = %v, want > 0", p)
	}
	// Exempt technologies: zero.
	p, err = PitchCountIO(ic.Hybrid3D, units.Millimeters(15), 11)
	if err != nil || p != 0 {
		t.Errorf("hybrid pitch-count = %v, %v; want 0, nil", p, err)
	}
	if _, err := PitchCountIO(ic.EMIB, 0, 11); err == nil {
		t.Error("zero edge should error")
	}
	if _, err := PitchCountIO(ic.EMIB, units.Millimeters(15), 0); err == nil {
		t.Error("zero layers should error")
	}
}

// The provisioned-interface form must upper-bound the utilized form for a
// realistic utilization.
func TestPitchCountUpperBoundsUtilized(t *testing.T) {
	edge := units.SquareMillimeters(242).Edge()
	prov, err := PitchCountIO(ic.EMIB, edge, 11)
	if err != nil {
		t.Fatal(err)
	}
	util, err := InterfacePower(ic.EMIB, units.TerabytesPerSecond(0.3), DefaultIOKappa)
	if err != nil {
		t.Fatal(err)
	}
	if prov <= util {
		t.Errorf("provisioned power %v should exceed utilized power %v", prov, util)
	}
}

func TestWireSavingOrdering(t *testing.T) {
	if !(WireSaving(ic.Monolithic3D) > WireSaving(ic.Hybrid3D) &&
		WireSaving(ic.Hybrid3D) > WireSaving(ic.MicroBump3D) &&
		WireSaving(ic.MicroBump3D) > 0) {
		t.Error("wire-saving ordering M3D > hybrid > micro > 0 violated")
	}
	for _, i := range []ic.Integration{ic.Mono2D, ic.MCM, ic.InFO, ic.EMIB, ic.SiInterposer} {
		if WireSaving(i) != 0 {
			t.Errorf("%s should have zero wire saving", i)
		}
	}
	for _, i := range ic.Integrations() {
		if s := WireSaving(i); s < 0 || s > 0.3 {
			t.Errorf("%s: wire saving %v outside [0, 0.3]", i, s)
		}
	}
}

func TestOperationalKnownValue(t *testing.T) {
	// Eq. 16: 92.7 W for 365 h/yr on a 370 g/kWh grid ≈ 12.5 kg/yr.
	c, err := Operational(units.GramsPerKWh(370), units.Watts(92.7), units.Hours(365))
	if err != nil {
		t.Fatal(err)
	}
	want := 0.370 * 0.0927 * 365
	if math.Abs(c.Kg()-want) > 1e-9 {
		t.Errorf("operational carbon = %v, want %v kg", c.Kg(), want)
	}
}

func TestOperationalErrors(t *testing.T) {
	if _, err := Operational(0, units.Watts(1), units.Hours(1)); err == nil {
		t.Error("zero CI should error")
	}
	if _, err := Operational(units.GramsPerKWh(100), -1, units.Hours(1)); err == nil {
		t.Error("negative power should error")
	}
	if _, err := Operational(units.GramsPerKWh(100), units.Watts(1), -1); err == nil {
		t.Error("negative time should error")
	}
}
