// Package report renders the tool's outputs: aligned text tables (the
// Table 5 style), CSV for downstream plotting, and ASCII bar charts that
// stand in for the paper's figures in a terminal.
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned text table.
type Table struct {
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given headers.
func NewTable(headers ...string) *Table {
	return &Table{Headers: headers}
}

// Add appends a row; short rows are padded, long rows truncated to the
// header width.
func (t *Table) Add(cells ...string) {
	row := make([]string, len(t.Headers))
	for i := range row {
		if i < len(cells) {
			row[i] = cells[i]
		}
	}
	t.Rows = append(t.Rows, row)
}

// widths returns per-column display widths.
func (t *Table) widths() []int {
	w := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		w[i] = utf8.RuneCountInString(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if n := utf8.RuneCountInString(c); n > w[i] {
				w[i] = n
			}
		}
	}
	return w
}

func pad(s string, width int) string {
	return s + strings.Repeat(" ", width-utf8.RuneCountInString(s))
}

// String renders the aligned table.
func (t *Table) String() string {
	if len(t.Headers) == 0 {
		return ""
	}
	w := t.widths()
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(pad(c, w[i]))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	rule := make([]string, len(t.Headers))
	for i := range rule {
		rule[i] = strings.Repeat("-", w[i])
	}
	writeRow(rule)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// csvEscape quotes a CSV field when needed.
func csvEscape(s string) string {
	if strings.ContainsAny(s, ",\"\n") {
		return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
	}
	return s
}

// CSV renders the table as RFC-4180-style CSV.
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			b.WriteString(csvEscape(c))
		}
		b.WriteString("\n")
	}
	writeRow(t.Headers)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// BarItem is one bar of an ASCII chart.
type BarItem struct {
	Label string
	Value float64
	// Marker is appended after the value (e.g. the paper's "invalid" ×).
	Marker string
}

// BarChart renders horizontal bars scaled to the maximum value. Negative
// values render with a left-pointing bar.
func BarChart(title, unit string, items []BarItem, width int) string {
	if width < 10 {
		width = 10
	}
	maxAbs := 0.0
	labelW := 0
	for _, it := range items {
		if v := abs(it.Value); v > maxAbs {
			maxAbs = v
		}
		if n := utf8.RuneCountInString(it.Label); n > labelW {
			labelW = n
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for _, it := range items {
		n := 0
		if maxAbs > 0 {
			n = int(abs(it.Value)/maxAbs*float64(width) + 0.5)
		}
		bar := strings.Repeat("█", n)
		if it.Value < 0 {
			bar = strings.Repeat("▒", n)
		}
		fmt.Fprintf(&b, "%s  %s %.2f %s", pad(it.Label, labelW), bar, it.Value, unit)
		if it.Marker != "" {
			fmt.Fprintf(&b, " %s", it.Marker)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// StackedBar renders one label with two stacked segments (embodied +
// operational, the Fig. 5 bar style).
type StackedBar struct {
	Label  string
	First  float64 // rendered with █
	Second float64 // rendered with ░
	Marker string
}

// StackedBarChart renders Fig. 5-style stacked bars.
func StackedBarChart(title, unit string, items []StackedBar, width int) string {
	if width < 10 {
		width = 10
	}
	maxTotal := 0.0
	labelW := 0
	for _, it := range items {
		if v := it.First + it.Second; v > maxTotal {
			maxTotal = v
		}
		if n := utf8.RuneCountInString(it.Label); n > labelW {
			labelW = n
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	for _, it := range items {
		n1, n2 := 0, 0
		if maxTotal > 0 {
			n1 = int(it.First/maxTotal*float64(width) + 0.5)
			n2 = int(it.Second/maxTotal*float64(width) + 0.5)
		}
		fmt.Fprintf(&b, "%s  %s%s %.2f+%.2f %s",
			pad(it.Label, labelW), strings.Repeat("█", n1), strings.Repeat("░", n2),
			it.First, it.Second, unit)
		if it.Marker != "" {
			fmt.Fprintf(&b, " %s", it.Marker)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// Pct formats a ratio as a signed percentage with two decimals (Table 5
// style).
func Pct(ratio float64) string {
	return fmt.Sprintf("%.2f%%", ratio*100)
}

// Kg formats a carbon mass in kilograms.
func Kg(kg float64) string {
	return fmt.Sprintf("%.2f", kg)
}
