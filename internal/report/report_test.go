package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tb := NewTable("Design", "Embodied", "Total")
	tb.Add("2D", "19.5", "35.0")
	tb.Add("M3D", "6.7", "20.1")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected 4 lines (header, rule, 2 rows), got %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "Design") {
		t.Errorf("header line = %q", lines[0])
	}
	if !strings.Contains(lines[1], "---") {
		t.Errorf("rule line = %q", lines[1])
	}
	// Column alignment: "Embodied" and the values beneath start at the
	// same offset.
	off := strings.Index(lines[0], "Embodied")
	if !strings.HasPrefix(lines[2][off:], "19.5") {
		t.Errorf("column misaligned:\n%s", out)
	}
}

func TestTableShortAndLongRows(t *testing.T) {
	tb := NewTable("A", "B")
	tb.Add("only-a")
	tb.Add("x", "y", "overflow-ignored")
	out := tb.String()
	if strings.Contains(out, "overflow") {
		t.Errorf("overflow cell should be dropped:\n%s", out)
	}
	if !strings.Contains(out, "only-a") {
		t.Errorf("short row missing:\n%s", out)
	}
}

func TestEmptyTable(t *testing.T) {
	tb := &Table{}
	if got := tb.String(); got != "" {
		t.Errorf("empty table renders %q", got)
	}
}

func TestCSV(t *testing.T) {
	tb := NewTable("name", "value")
	tb.Add("plain", "1")
	tb.Add("with,comma", "2")
	tb.Add(`with"quote`, "3")
	out := tb.CSV()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "name,value" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if lines[2] != `"with,comma",2` {
		t.Errorf("comma field = %q", lines[2])
	}
	if lines[3] != `"with""quote",3` {
		t.Errorf("quote field = %q", lines[3])
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("Fig — embodied", "kg", []BarItem{
		{Label: "2D", Value: 19.5},
		{Label: "M3D", Value: 6.7},
		{Label: "Si_int", Value: -2.0, Marker: "×"},
	}, 20)
	if !strings.Contains(out, "Fig — embodied") {
		t.Errorf("title missing:\n%s", out)
	}
	if !strings.Contains(out, "×") {
		t.Errorf("marker missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("expected title + 3 bars, got %d lines", len(lines))
	}
	// The largest value has the longest bar.
	if strings.Count(lines[1], "█") <= strings.Count(lines[2], "█") {
		t.Errorf("bar lengths not proportional:\n%s", out)
	}
	// Negative bars use the alternate glyph.
	if !strings.Contains(lines[3], "▒") {
		t.Errorf("negative bar glyph missing:\n%s", out)
	}
}

func TestBarChartDegenerate(t *testing.T) {
	out := BarChart("", "kg", []BarItem{{Label: "zero", Value: 0}}, 5)
	if !strings.Contains(out, "zero") {
		t.Errorf("zero-value chart broken:\n%s", out)
	}
}

func TestStackedBarChart(t *testing.T) {
	out := StackedBarChart("Fig 5", "kg", []StackedBar{
		{Label: "2D", First: 19.5, Second: 15.2},
		{Label: "EMIB", First: 14.9, Second: 17.2, Marker: "×"},
	}, 30)
	if !strings.Contains(out, "█") || !strings.Contains(out, "░") {
		t.Errorf("stacked glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "19.50+15.20") {
		t.Errorf("value annotation missing:\n%s", out)
	}
	if !strings.Contains(out, "×") {
		t.Errorf("marker missing:\n%s", out)
	}
}

func TestFormatters(t *testing.T) {
	if got := Pct(0.6553); got != "65.53%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(-0.0959); got != "-9.59%" {
		t.Errorf("Pct negative = %q", got)
	}
	if got := Kg(3.466); got != "3.47" {
		t.Errorf("Kg = %q", got)
	}
}
